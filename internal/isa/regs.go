package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Reg identifies one of the 32 base integer registers x0–x31.
type Reg uint8

// EReg identifies one of the 32 xBGAS extended ("e") registers e0–e31.
// Paper Figure 1: the extended register file mirrors the base register
// file; e-register k is the natural pair of base register x-k and holds
// the upper 64 bits (the object ID) of a 128-bit extended address.
type EReg uint8

// NumRegs is the size of each register file.
const NumRegs = 32

// Base register ABI names, in the standard RV64 ABI order.
const (
	Zero Reg = iota // x0, hardwired zero
	RA              // x1, return address
	SP              // x2, stack pointer
	GP              // x3, global pointer
	TP              // x4, thread pointer
	T0              // x5
	T1              // x6
	T2              // x7
	S0              // x8 / fp
	S1              // x9
	A0              // x10, argument/return
	A1              // x11
	A2              // x12
	A3              // x13
	A4              // x14
	A5              // x15
	A6              // x16
	A7              // x17, syscall number
	S2              // x18
	S3              // x19
	S4              // x20
	S5              // x21
	S6              // x22
	S7              // x23
	S8              // x24
	S9              // x25
	S10             // x26
	S11             // x27
	T3              // x28
	T4              // x29
	T5              // x30
	T6              // x31
)

var abiNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of the register ("a0", "sp", ...).
func (r Reg) String() string {
	if int(r) < len(abiNames) {
		return abiNames[r]
	}
	return fmt.Sprintf("x?%d", uint8(r))
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// String returns the extended register name ("e0" ... "e31").
func (e EReg) String() string { return fmt.Sprintf("e%d", uint8(e)) }

// Valid reports whether e names an architectural extended register.
func (e EReg) Valid() bool { return e < NumRegs }

// Pair returns the extended register naturally paired with base register
// r. Base-class xBGAS load/stores (paper §3.2) "automatically employ the
// extended register that naturally corresponds to the provided base
// register" — i.e. the one with the same index.
func (r Reg) Pair() EReg { return EReg(r) }

// ParseReg parses a base register name: an ABI name ("a0", "sp"), a
// numeric name ("x10"), or the frame-pointer alias "fp".
func ParseReg(s string) (Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "fp" {
		return S0, nil
	}
	for i, n := range abiNames {
		if s == n {
			return Reg(i), nil
		}
	}
	if strings.HasPrefix(s, "x") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("isa: unknown register %q", s)
}

// ParseEReg parses an extended register name ("e0" ... "e31").
func ParseEReg(s string) (EReg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if strings.HasPrefix(s, "e") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return EReg(n), nil
		}
	}
	return 0, fmt.Errorf("isa: unknown extended register %q", s)
}

// RegisterFileLayout renders the combined register file of paper
// Figure 1: each base register x-k alongside its extended pair e-k, the
// two together forming one 128-bit extended address.
func RegisterFileLayout() string {
	var b strings.Builder
	b.WriteString("xBGAS extended register file (paper Figure 1)\n")
	b.WriteString("128-bit extended address = e[k] (object ID) : x[k] (64-bit base address)\n\n")
	b.WriteString("  idx  base   abi    extended\n")
	for i := 0; i < NumRegs; i++ {
		fmt.Fprintf(&b, "  %2d   x%-4d  %-5s  e%d\n", i, i, abiNames[i], i)
	}
	return b.String()
}
