package isa

import (
	"fmt"
	"sort"
	"strings"
)

// OpcodeTable renders the full instruction encoding table in the style
// of an ISA specification appendix: mnemonic, format, major opcode,
// funct3/funct7 discriminators. The xBGAS extension instructions are
// grouped under their custom opcodes.
func OpcodeTable() string {
	type row struct {
		name   string
		format Format
		opc    uint32
		f3     uint32
		f7     uint32
		xbgas  bool
	}
	rows := make([]row, 0, int(numOps))
	for op := OpInvalid + 1; op < numOps; op++ {
		info := opTable[op]
		rows = append(rows, row{
			name: info.name, format: info.format,
			opc: info.opcode, f3: info.funct3, f7: info.funct7,
			xbgas: op.IsXBGAS(),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].xbgas != rows[j].xbgas {
			return !rows[i].xbgas
		}
		if rows[i].opc != rows[j].opc {
			return rows[i].opc < rows[j].opc
		}
		if rows[i].f3 != rows[j].f3 {
			return rows[i].f3 < rows[j].f3
		}
		return rows[i].f7 < rows[j].f7
	})

	formatName := map[Format]string{
		FormatR: "R", FormatI: "I", FormatS: "S",
		FormatB: "B", FormatU: "U", FormatJ: "J",
	}
	var b strings.Builder
	b.WriteString("RV64I + M-subset + xBGAS instruction encodings\n")
	fmt.Fprintf(&b, "%-8s %-3s %-9s %-7s %-7s %s\n",
		"mnem", "fmt", "opcode", "funct3", "funct7", "class")
	sectionDone := false
	for _, r := range rows {
		if r.xbgas && !sectionDone {
			b.WriteString("--- xBGAS extension (custom-0..custom-3 opcode space) ---\n")
			sectionDone = true
		}
		class := "base"
		if r.xbgas {
			class = "xbgas"
		}
		fmt.Fprintf(&b, "%-8s %-3s %#07b %#05b  %#09b %s\n",
			r.name, formatName[r.format], r.opc, r.f3, r.f7, class)
	}
	return b.String()
}
