package isa

import "testing"

// FuzzDecode asserts that no 32-bit word makes the decoder panic and
// that every successfully decoded instruction re-encodes to a word
// that decodes to the same instruction (encode need not reproduce the
// original word bit-for-bit: ignored fields are legal).
func FuzzDecode(f *testing.F) {
	seeds := []uint32{
		0x00000000, 0xFFFFFFFF, 0x00000013, // addi x0,x0,0
		0x00A5051B, 0x0000100B, 0x0000102B, 0x0000105B, 0x0000107B,
	}
	for _, op := range AllOps() {
		w, err := (Inst{Op: op, Rd: A0, Rs1: A1, Rs2: A2}).Encode()
		if err == nil {
			seeds = append(seeds, w)
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		inst, err := Decode(w)
		if err != nil {
			return
		}
		if !inst.Op.Valid() {
			t.Fatalf("decode accepted %#08x but produced invalid op", w)
		}
		_ = inst.Disasm() // must not panic
		re, err := inst.Encode()
		if err != nil {
			t.Fatalf("decoded %#08x to %+v which fails to encode: %v", w, inst, err)
		}
		back, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded word %#08x fails to decode: %v", re, err)
		}
		if back != inst {
			t.Fatalf("decode(%#08x)=%+v but decode(encode)=%+v", w, inst, back)
		}
	})
}
