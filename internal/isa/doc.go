// Package isa models the RISC-V RV64I instruction set together with the
// xBGAS extension described in the xBGAS architecture specification and in
// Williams et al., "Collective Communication for the RISC-V xBGAS ISA
// Extension" (ICPP 2019).
//
// The package provides:
//
//   - the register files: the 32 base integer registers x0–x31 and the 32
//     xBGAS extended registers e0–e31 (paper Figure 1),
//
//   - an instruction representation (Inst) with binary encode and decode
//     for the RV64I base, the M multiply/divide subset, and the three
//     xBGAS instruction classes of paper §3.2:
//
//     base integer load/store   — eld rd, imm(rs1): the extended register
//     naturally paired with rs1 supplies the upper 64 bits of the
//     effective address;
//
//     raw integer load/store    — erld rd, rs1, ext2: the extended
//     register is named explicitly and no immediate is available;
//
//     address management        — eaddi/eaddie/eaddix move values between
//     base and extended registers without touching memory,
//
//   - a disassembler producing the mnemonics used throughout the paper.
//
// The xBGAS opcodes occupy the custom-0..custom-3 major opcode space
// reserved by the RISC-V specification for extensions; the semantic
// behaviour (effective-address formation, OLB translation on a non-zero
// object ID) follows the paper exactly.
package isa
