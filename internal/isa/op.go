package isa

// Format is the RISC-V instruction encoding format.
type Format uint8

// Instruction formats per the RISC-V user-level specification.
const (
	FormatR Format = iota // register-register
	FormatI               // register-immediate, loads, jalr
	FormatS               // stores
	FormatB               // conditional branches
	FormatU               // lui/auipc
	FormatJ               // jal
)

// Major opcode values (bits [6:0] of the instruction word).
const (
	opcLUI      = 0x37
	opcAUIPC    = 0x17
	opcJAL      = 0x6F
	opcJALR     = 0x67
	opcBranch   = 0x63
	opcLoad     = 0x03
	opcStore    = 0x23
	opcOpImm    = 0x13
	opcOpImm32  = 0x1B
	opcOp       = 0x33
	opcOp32     = 0x3B
	opcMiscMem  = 0x0F
	opcSystem   = 0x73
	opcXLoad    = 0x0B // custom-0: xBGAS base-class extended loads
	opcXStore   = 0x2B // custom-1: xBGAS base-class extended stores
	opcXRaw     = 0x5B // custom-2: xBGAS raw-class loads/stores
	opcXAddress = 0x7B // custom-3: xBGAS address management
)

// Op names an instruction operation.
type Op uint16

// RV64I base, M subset, and xBGAS operations.
const (
	OpInvalid Op = iota

	// RV64I upper-immediate and control transfer.
	LUI
	AUIPC
	JAL
	JALR

	// Conditional branches.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	// Local loads.
	LB
	LH
	LW
	LD
	LBU
	LHU
	LWU

	// Local stores.
	SB
	SH
	SW
	SD

	// Register-immediate ALU.
	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI
	ADDIW
	SLLIW
	SRLIW
	SRAIW

	// Register-register ALU.
	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND
	ADDW
	SUBW
	SLLW
	SRLW
	SRAW

	// M extension subset.
	MUL
	MULH
	MULHU
	DIV
	DIVU
	REM
	REMU
	MULW
	DIVW
	DIVUW
	REMW
	REMUW

	// Miscellaneous.
	FENCE
	ECALL
	EBREAK

	// xBGAS base-class extended loads: eld rd, imm(rs1).
	// The extended register paired with rs1 supplies the object ID.
	ELB
	ELH
	ELW
	ELD
	ELBU
	ELHU
	ELWU

	// xBGAS base-class extended stores: esd rs2, imm(rs1).
	ESB
	ESH
	ESW
	ESD

	// xBGAS raw-class loads: erld rd, rs1, ext2.
	// Rs2 carries the extended-register index; no immediate (paper §3.2).
	ERLB
	ERLH
	ERLW
	ERLD
	ERLBU
	ERLHU
	ERLWU

	// xBGAS raw-class stores: ersd rs1, rs2, ext3.
	// Rs1 is the value, Rs2 the address, Rd carries the extended-register
	// index.
	ERSB
	ERSH
	ERSW
	ERSD

	// xBGAS extended-register spill/fill: move an extended register to
	// or from local memory (the xBGAS specification's ele/ese forms).
	ELE // ele ext1, imm(rs1): e[ext1] = mem64[x[rs1]+imm]
	ESE // ese ext1, imm(rs1): mem64[x[rs1]+imm] = e[ext1]

	// xBGAS address management (paper §3.2: manipulate extended register
	// contents without performing remote accesses).
	EADDI  // eaddi  rd,  ext1, imm : x[rd]  = e[ext1] + imm
	EADDIE // eaddie ext1, rs1, imm : e[ext1] = x[rs1] + imm
	EADDIX // eaddix ext1, ext2, imm: e[ext1] = e[ext2] + imm

	numOps // sentinel
)

// opInfo carries the encoding metadata for one operation.
type opInfo struct {
	name   string
	format Format
	opcode uint32 // major opcode bits [6:0]
	funct3 uint32
	funct7 uint32
	// shift marks OP-IMM shifts, whose immediate is a 6-bit shamt with
	// funct7[6:1] acting as a discriminator (RV64 encoding).
	shift bool
}

var opTable = [numOps]opInfo{
	LUI:   {"lui", FormatU, opcLUI, 0, 0, false},
	AUIPC: {"auipc", FormatU, opcAUIPC, 0, 0, false},
	JAL:   {"jal", FormatJ, opcJAL, 0, 0, false},
	JALR:  {"jalr", FormatI, opcJALR, 0, 0, false},

	BEQ:  {"beq", FormatB, opcBranch, 0, 0, false},
	BNE:  {"bne", FormatB, opcBranch, 1, 0, false},
	BLT:  {"blt", FormatB, opcBranch, 4, 0, false},
	BGE:  {"bge", FormatB, opcBranch, 5, 0, false},
	BLTU: {"bltu", FormatB, opcBranch, 6, 0, false},
	BGEU: {"bgeu", FormatB, opcBranch, 7, 0, false},

	LB:  {"lb", FormatI, opcLoad, 0, 0, false},
	LH:  {"lh", FormatI, opcLoad, 1, 0, false},
	LW:  {"lw", FormatI, opcLoad, 2, 0, false},
	LD:  {"ld", FormatI, opcLoad, 3, 0, false},
	LBU: {"lbu", FormatI, opcLoad, 4, 0, false},
	LHU: {"lhu", FormatI, opcLoad, 5, 0, false},
	LWU: {"lwu", FormatI, opcLoad, 6, 0, false},

	SB: {"sb", FormatS, opcStore, 0, 0, false},
	SH: {"sh", FormatS, opcStore, 1, 0, false},
	SW: {"sw", FormatS, opcStore, 2, 0, false},
	SD: {"sd", FormatS, opcStore, 3, 0, false},

	ADDI:  {"addi", FormatI, opcOpImm, 0, 0, false},
	SLTI:  {"slti", FormatI, opcOpImm, 2, 0, false},
	SLTIU: {"sltiu", FormatI, opcOpImm, 3, 0, false},
	XORI:  {"xori", FormatI, opcOpImm, 4, 0, false},
	ORI:   {"ori", FormatI, opcOpImm, 6, 0, false},
	ANDI:  {"andi", FormatI, opcOpImm, 7, 0, false},
	SLLI:  {"slli", FormatI, opcOpImm, 1, 0x00, true},
	SRLI:  {"srli", FormatI, opcOpImm, 5, 0x00, true},
	SRAI:  {"srai", FormatI, opcOpImm, 5, 0x20, true},
	ADDIW: {"addiw", FormatI, opcOpImm32, 0, 0, false},
	SLLIW: {"slliw", FormatI, opcOpImm32, 1, 0x00, true},
	SRLIW: {"srliw", FormatI, opcOpImm32, 5, 0x00, true},
	SRAIW: {"sraiw", FormatI, opcOpImm32, 5, 0x20, true},

	ADD:  {"add", FormatR, opcOp, 0, 0x00, false},
	SUB:  {"sub", FormatR, opcOp, 0, 0x20, false},
	SLL:  {"sll", FormatR, opcOp, 1, 0x00, false},
	SLT:  {"slt", FormatR, opcOp, 2, 0x00, false},
	SLTU: {"sltu", FormatR, opcOp, 3, 0x00, false},
	XOR:  {"xor", FormatR, opcOp, 4, 0x00, false},
	SRL:  {"srl", FormatR, opcOp, 5, 0x00, false},
	SRA:  {"sra", FormatR, opcOp, 5, 0x20, false},
	OR:   {"or", FormatR, opcOp, 6, 0x00, false},
	AND:  {"and", FormatR, opcOp, 7, 0x00, false},
	ADDW: {"addw", FormatR, opcOp32, 0, 0x00, false},
	SUBW: {"subw", FormatR, opcOp32, 0, 0x20, false},
	SLLW: {"sllw", FormatR, opcOp32, 1, 0x00, false},
	SRLW: {"srlw", FormatR, opcOp32, 5, 0x00, false},
	SRAW: {"sraw", FormatR, opcOp32, 5, 0x20, false},

	MUL:   {"mul", FormatR, opcOp, 0, 0x01, false},
	MULH:  {"mulh", FormatR, opcOp, 1, 0x01, false},
	MULHU: {"mulhu", FormatR, opcOp, 3, 0x01, false},
	DIV:   {"div", FormatR, opcOp, 4, 0x01, false},
	DIVU:  {"divu", FormatR, opcOp, 5, 0x01, false},
	REM:   {"rem", FormatR, opcOp, 6, 0x01, false},
	REMU:  {"remu", FormatR, opcOp, 7, 0x01, false},
	MULW:  {"mulw", FormatR, opcOp32, 0, 0x01, false},
	DIVW:  {"divw", FormatR, opcOp32, 4, 0x01, false},
	DIVUW: {"divuw", FormatR, opcOp32, 5, 0x01, false},
	REMW:  {"remw", FormatR, opcOp32, 6, 0x01, false},
	REMUW: {"remuw", FormatR, opcOp32, 7, 0x01, false},

	FENCE:  {"fence", FormatI, opcMiscMem, 0, 0, false},
	ECALL:  {"ecall", FormatI, opcSystem, 0, 0, false},
	EBREAK: {"ebreak", FormatI, opcSystem, 0, 0, false},

	ELE: {"ele", FormatI, opcXLoad, 7, 0, false},
	ESE: {"ese", FormatS, opcXStore, 7, 0, false},

	ELB:  {"elb", FormatI, opcXLoad, 0, 0, false},
	ELH:  {"elh", FormatI, opcXLoad, 1, 0, false},
	ELW:  {"elw", FormatI, opcXLoad, 2, 0, false},
	ELD:  {"eld", FormatI, opcXLoad, 3, 0, false},
	ELBU: {"elbu", FormatI, opcXLoad, 4, 0, false},
	ELHU: {"elhu", FormatI, opcXLoad, 5, 0, false},
	ELWU: {"elwu", FormatI, opcXLoad, 6, 0, false},

	ESB: {"esb", FormatS, opcXStore, 0, 0, false},
	ESH: {"esh", FormatS, opcXStore, 1, 0, false},
	ESW: {"esw", FormatS, opcXStore, 2, 0, false},
	ESD: {"esd", FormatS, opcXStore, 3, 0, false},

	ERLB:  {"erlb", FormatR, opcXRaw, 0, 0x00, false},
	ERLH:  {"erlh", FormatR, opcXRaw, 1, 0x00, false},
	ERLW:  {"erlw", FormatR, opcXRaw, 2, 0x00, false},
	ERLD:  {"erld", FormatR, opcXRaw, 3, 0x00, false},
	ERLBU: {"erlbu", FormatR, opcXRaw, 4, 0x00, false},
	ERLHU: {"erlhu", FormatR, opcXRaw, 5, 0x00, false},
	ERLWU: {"erlwu", FormatR, opcXRaw, 6, 0x00, false},

	ERSB: {"ersb", FormatR, opcXRaw, 0, 0x01, false},
	ERSH: {"ersh", FormatR, opcXRaw, 1, 0x01, false},
	ERSW: {"ersw", FormatR, opcXRaw, 2, 0x01, false},
	ERSD: {"ersd", FormatR, opcXRaw, 3, 0x01, false},

	EADDI:  {"eaddi", FormatI, opcXAddress, 0, 0, false},
	EADDIE: {"eaddie", FormatI, opcXAddress, 1, 0, false},
	EADDIX: {"eaddix", FormatI, opcXAddress, 2, 0, false},
}

// String returns the assembler mnemonic for the operation.
func (op Op) String() string {
	if op > OpInvalid && op < numOps {
		return opTable[op].name
	}
	return "invalid"
}

// Format returns the encoding format of the operation.
func (op Op) Format() Format {
	if op > OpInvalid && op < numOps {
		return opTable[op].format
	}
	return FormatI
}

// Valid reports whether op names a defined operation.
func (op Op) Valid() bool { return op > OpInvalid && op < numOps }

// IsXBGAS reports whether op belongs to the xBGAS extension.
func (op Op) IsXBGAS() bool {
	switch op.majorOpcode() {
	case opcXLoad, opcXStore, opcXRaw, opcXAddress:
		return true
	}
	return false
}

// IsRemoteLoad reports whether op is an xBGAS load (base or raw class).
func (op Op) IsRemoteLoad() bool {
	switch op {
	case ELB, ELH, ELW, ELD, ELBU, ELHU, ELWU,
		ERLB, ERLH, ERLW, ERLD, ERLBU, ERLHU, ERLWU:
		return true
	}
	return false
}

// IsRemoteStore reports whether op is an xBGAS store (base or raw class).
func (op Op) IsRemoteStore() bool {
	switch op {
	case ESB, ESH, ESW, ESD, ERSB, ERSH, ERSW, ERSD:
		return true
	}
	return false
}

// MemWidth returns the access width in bytes for load/store operations
// (local or extended), and 0 for non-memory operations.
func (op Op) MemWidth() int {
	switch op {
	case LB, LBU, SB, ELB, ELBU, ESB, ERLB, ERLBU, ERSB:
		return 1
	case LH, LHU, SH, ELH, ELHU, ESH, ERLH, ERLHU, ERSH:
		return 2
	case LW, LWU, SW, ELW, ELWU, ESW, ERLW, ERLWU, ERSW:
		return 4
	case LD, SD, ELD, ESD, ERLD, ERSD:
		return 8
	}
	return 0
}

// MemUnsigned reports whether a load zero-extends (lbu/lhu/lwu and the
// extended equivalents). 64-bit loads have no signedness distinction.
func (op Op) MemUnsigned() bool {
	switch op {
	case LBU, LHU, LWU, ELBU, ELHU, ELWU, ERLBU, ERLHU, ERLWU:
		return true
	}
	return false
}

func (op Op) majorOpcode() uint32 {
	if op > OpInvalid && op < numOps {
		return opTable[op].opcode
	}
	return 0
}

// OpByName returns the operation with the given assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := OpInvalid + 1; op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// AllOps returns every defined operation, in declaration order. It is
// used by encode/decode round-trip tests and the disassembler tests.
func AllOps() []Op {
	ops := make([]Op, 0, int(numOps)-1)
	for op := OpInvalid + 1; op < numOps; op++ {
		ops = append(ops, op)
	}
	return ops
}
