package isa

import (
	"errors"
	"fmt"
)

// InstBytes is the size of one encoded instruction word.
const InstBytes = 4

// ErrBadEncoding is wrapped by Decode errors for unrecognised words.
var ErrBadEncoding = errors.New("isa: bad instruction encoding")

// Inst is one decoded instruction.
//
// Register fields hold raw 5-bit indices. For most operations they name
// base registers; the xBGAS raw-class and address-management operations
// reinterpret one field as an extended-register index, exposed through
// the ExtReg helpers below:
//
//	erld rd, rs1, ext2  — Rs2 is the extended register
//	ersd rs1, rs2, ext3 — Rd is the extended register
//	eaddi rd, ext1, imm — Rs1 is the extended register
//	eaddie ext1, rs1, imm — Rd is the extended register
//	eaddix ext1, ext2, imm — Rd and Rs1 are both extended registers
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// ExtRd returns the Rd field viewed as an extended register.
func (i Inst) ExtRd() EReg { return EReg(i.Rd) }

// ExtRs1 returns the Rs1 field viewed as an extended register.
func (i Inst) ExtRs1() EReg { return EReg(i.Rs1) }

// ExtRs2 returns the Rs2 field viewed as an extended register.
func (i Inst) ExtRs2() EReg { return EReg(i.Rs2) }

func signExtend(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

// immRange reports the inclusive immediate range for a format.
func immRange(op Op) (lo, hi int64, mul int64) {
	info := opTable[op]
	if info.shift {
		if op == SLLIW || op == SRLIW || op == SRAIW {
			return 0, 31, 1
		}
		return 0, 63, 1
	}
	switch info.format {
	case FormatI, FormatS:
		return -2048, 2047, 1
	case FormatB:
		return -4096, 4094, 2
	case FormatU:
		return 0, 0xFFFFF, 1 // 20-bit unsigned page number
	case FormatJ:
		return -(1 << 20), (1 << 20) - 2, 2
	}
	return 0, 0, 1
}

// Encode produces the 32-bit instruction word for i. It validates
// register indices and immediate ranges.
func (i Inst) Encode() (uint32, error) {
	if !i.Op.Valid() {
		return 0, fmt.Errorf("isa: encode: invalid op %d", i.Op)
	}
	if !i.Rd.Valid() || !i.Rs1.Valid() || !i.Rs2.Valid() {
		return 0, fmt.Errorf("isa: encode %s: register index out of range", i.Op)
	}
	info := opTable[i.Op]
	lo, hi, mul := immRange(i.Op)
	if info.format != FormatR && (i.Imm < lo || i.Imm > hi || i.Imm%mul != 0) {
		return 0, fmt.Errorf("isa: encode %s: immediate %d outside [%d,%d] step %d",
			i.Op, i.Imm, lo, hi, mul)
	}

	w := info.opcode
	rd := uint32(i.Rd) << 7
	rs1 := uint32(i.Rs1) << 15
	rs2 := uint32(i.Rs2) << 20
	f3 := info.funct3 << 12

	switch info.format {
	case FormatR:
		w |= rd | f3 | rs1 | rs2 | info.funct7<<25

	case FormatI:
		imm := uint32(i.Imm) & 0xFFF
		if info.shift {
			imm = uint32(i.Imm) & 0x3F // 6-bit shamt (RV64)
			imm |= info.funct7 << 5    // funct7[6:1] discriminator
		}
		if i.Op == EBREAK {
			imm = 1
		}
		w |= rd | f3 | rs1 | imm<<20

	case FormatS:
		imm := uint32(i.Imm) & 0xFFF
		w |= (imm & 0x1F) << 7
		w |= f3 | rs1 | rs2
		w |= (imm >> 5) << 25

	case FormatB:
		imm := uint32(i.Imm) & 0x1FFF
		w |= ((imm >> 11) & 1) << 7
		w |= ((imm >> 1) & 0xF) << 8
		w |= f3 | rs1 | rs2
		w |= ((imm >> 5) & 0x3F) << 25
		w |= ((imm >> 12) & 1) << 31

	case FormatU:
		w |= rd | uint32(i.Imm)<<12

	case FormatJ:
		imm := uint32(i.Imm) & 0x1FFFFF
		w |= rd
		w |= ((imm >> 12) & 0xFF) << 12
		w |= ((imm >> 11) & 1) << 20
		w |= ((imm >> 1) & 0x3FF) << 21
		w |= ((imm >> 20) & 1) << 31
	}
	return w, nil
}

// MustEncode is Encode for instructions known valid at construction time;
// it panics on error and is intended for runtime-generated stubs.
func (i Inst) MustEncode() uint32 {
	w, err := i.Encode()
	if err != nil {
		panic(err)
	}
	return w
}

// Decode decodes one 32-bit instruction word.
func Decode(w uint32) (Inst, error) {
	opcode := w & 0x7F
	rd := Reg((w >> 7) & 0x1F)
	funct3 := (w >> 12) & 7
	rs1 := Reg((w >> 15) & 0x1F)
	rs2 := Reg((w >> 20) & 0x1F)
	funct7 := w >> 25

	inst := Inst{Rd: rd, Rs1: rs1, Rs2: rs2}

	fail := func() (Inst, error) {
		return Inst{}, fmt.Errorf("%w: %#08x", ErrBadEncoding, w)
	}

	switch opcode {
	case opcLUI, opcAUIPC:
		if opcode == opcLUI {
			inst.Op = LUI
		} else {
			inst.Op = AUIPC
		}
		inst.Rs1, inst.Rs2 = 0, 0
		inst.Imm = int64(w >> 12)
		return inst, nil

	case opcJAL:
		inst.Op = JAL
		inst.Rs1, inst.Rs2 = 0, 0
		imm := ((w >> 31) & 1) << 20
		imm |= ((w >> 21) & 0x3FF) << 1
		imm |= ((w >> 20) & 1) << 11
		imm |= ((w >> 12) & 0xFF) << 12
		inst.Imm = signExtend(imm, 21)
		return inst, nil

	case opcJALR:
		if funct3 != 0 {
			return fail()
		}
		inst.Op = JALR
		inst.Rs2 = 0
		inst.Imm = signExtend(w>>20, 12)
		return inst, nil

	case opcBranch:
		ops := map[uint32]Op{0: BEQ, 1: BNE, 4: BLT, 5: BGE, 6: BLTU, 7: BGEU}
		op, ok := ops[funct3]
		if !ok {
			return fail()
		}
		inst.Op = op
		inst.Rd = 0
		imm := ((w >> 31) & 1) << 12
		imm |= ((w >> 7) & 1) << 11
		imm |= ((w >> 25) & 0x3F) << 5
		imm |= ((w >> 8) & 0xF) << 1
		inst.Imm = signExtend(imm, 13)
		return inst, nil

	case opcLoad, opcXLoad:
		var ops map[uint32]Op
		if opcode == opcLoad {
			ops = map[uint32]Op{0: LB, 1: LH, 2: LW, 3: LD, 4: LBU, 5: LHU, 6: LWU}
		} else {
			ops = map[uint32]Op{0: ELB, 1: ELH, 2: ELW, 3: ELD, 4: ELBU, 5: ELHU, 6: ELWU, 7: ELE}
		}
		op, ok := ops[funct3]
		if !ok {
			return fail()
		}
		inst.Op = op
		inst.Rs2 = 0
		inst.Imm = signExtend(w>>20, 12)
		return inst, nil

	case opcStore, opcXStore:
		var ops map[uint32]Op
		if opcode == opcStore {
			ops = map[uint32]Op{0: SB, 1: SH, 2: SW, 3: SD}
		} else {
			ops = map[uint32]Op{0: ESB, 1: ESH, 2: ESW, 3: ESD, 7: ESE}
		}
		op, ok := ops[funct3]
		if !ok {
			return fail()
		}
		inst.Op = op
		inst.Rd = 0
		imm := ((w >> 7) & 0x1F) | (funct7 << 5)
		inst.Imm = signExtend(imm, 12)
		return inst, nil

	case opcOpImm, opcOpImm32:
		w32 := opcode == opcOpImm32
		switch funct3 {
		case 1, 5: // shifts
			shamt := (w >> 20) & 0x3F
			disc := funct7 &^ 1 // bit 25 is part of the RV64 shamt
			var op Op
			switch {
			case funct3 == 1 && disc == 0x00:
				op = SLLI
			case funct3 == 5 && disc == 0x00:
				op = SRLI
			case funct3 == 5 && disc == 0x20:
				op = SRAI
			default:
				return fail()
			}
			if w32 {
				switch op {
				case SLLI:
					op = SLLIW
				case SRLI:
					op = SRLIW
				case SRAI:
					op = SRAIW
				}
				if shamt > 31 {
					return fail()
				}
			}
			inst.Op = op
			inst.Rs2 = 0
			inst.Imm = int64(shamt)
			return inst, nil
		default:
			var ops map[uint32]Op
			if w32 {
				ops = map[uint32]Op{0: ADDIW}
			} else {
				ops = map[uint32]Op{0: ADDI, 2: SLTI, 3: SLTIU, 4: XORI, 6: ORI, 7: ANDI}
			}
			op, ok := ops[funct3]
			if !ok {
				return fail()
			}
			inst.Op = op
			inst.Rs2 = 0
			inst.Imm = signExtend(w>>20, 12)
			return inst, nil
		}

	case opcOp, opcOp32:
		type key struct{ f3, f7 uint32 }
		var ops map[key]Op
		if opcode == opcOp {
			ops = map[key]Op{
				{0, 0x00}: ADD, {0, 0x20}: SUB, {1, 0x00}: SLL, {2, 0x00}: SLT,
				{3, 0x00}: SLTU, {4, 0x00}: XOR, {5, 0x00}: SRL, {5, 0x20}: SRA,
				{6, 0x00}: OR, {7, 0x00}: AND,
				{0, 0x01}: MUL, {1, 0x01}: MULH, {3, 0x01}: MULHU,
				{4, 0x01}: DIV, {5, 0x01}: DIVU, {6, 0x01}: REM, {7, 0x01}: REMU,
			}
		} else {
			ops = map[key]Op{
				{0, 0x00}: ADDW, {0, 0x20}: SUBW, {1, 0x00}: SLLW,
				{5, 0x00}: SRLW, {5, 0x20}: SRAW,
				{0, 0x01}: MULW, {4, 0x01}: DIVW, {5, 0x01}: DIVUW,
				{6, 0x01}: REMW, {7, 0x01}: REMUW,
			}
		}
		op, ok := ops[key{funct3, funct7}]
		if !ok {
			return fail()
		}
		inst.Op = op
		return inst, nil

	case opcMiscMem:
		if funct3 != 0 {
			return fail()
		}
		// fence: ordering bits are irrelevant to the functional model.
		return Inst{Op: FENCE}, nil

	case opcSystem:
		if funct3 != 0 || rd != 0 || rs1 != 0 {
			return fail()
		}
		switch w >> 20 {
		case 0:
			return Inst{Op: ECALL}, nil
		case 1:
			return Inst{Op: EBREAK, Imm: 1}, nil
		}
		return fail()

	case opcXRaw:
		type key struct{ f3, f7 uint32 }
		ops := map[key]Op{
			{0, 0x00}: ERLB, {1, 0x00}: ERLH, {2, 0x00}: ERLW, {3, 0x00}: ERLD,
			{4, 0x00}: ERLBU, {5, 0x00}: ERLHU, {6, 0x00}: ERLWU,
			{0, 0x01}: ERSB, {1, 0x01}: ERSH, {2, 0x01}: ERSW, {3, 0x01}: ERSD,
		}
		op, ok := ops[key{funct3, funct7}]
		if !ok {
			return fail()
		}
		inst.Op = op
		return inst, nil

	case opcXAddress:
		ops := map[uint32]Op{0: EADDI, 1: EADDIE, 2: EADDIX}
		op, ok := ops[funct3]
		if !ok {
			return fail()
		}
		inst.Op = op
		inst.Rs2 = 0
		inst.Imm = signExtend(w>>20, 12)
		return inst, nil
	}
	return fail()
}
