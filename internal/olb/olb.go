// Package olb implements the Object Look-aside Buffer of the xBGAS
// architecture extension (paper §3.2).
//
// Each physically disparate processing element carries an OLB holding "a
// mapping of every unique object ID to a remote physical address".
// Whenever a remote instruction executes, the upper 64 bits of the
// extended address — the object ID held in an e register — select the
// target: ID 0 means the local processing element; any other ID is
// translated through the OLB into a remote node and base address.
//
// The package models the OLB as a small fully-associative translation
// cache in front of a complete backing table, so that translation hits
// are cheap and misses pay a fill penalty, mirroring TLB-style hardware
// behaviour. The backing table never misses for registered IDs; an
// unregistered ID is an addressing fault, which the runtime surfaces as
// an error.
package olb

import (
	"fmt"
	"sort"
	"sync"
)

// LocalID is the reserved object ID naming the local processing element.
// Remote instructions whose extended register holds LocalID perform a
// plain local access and never consult the OLB (paper §3.2).
const LocalID uint64 = 0

// Entry is one translation: an object ID resolves to a node and the
// physical base address of the object's segment on that node.
type Entry struct {
	Node int    // owning processing element
	Base uint64 // physical base address on the owning node
}

// OLB is one processing element's Object Look-aside Buffer. It is safe
// for concurrent use.
type OLB struct {
	mu      sync.Mutex
	table   map[uint64]Entry  // backing table: every registered ID
	cache   map[uint64]uint64 // ID -> last-use tick
	entries int
	tick    uint64
	hits    uint64
	misses  uint64
	faults  uint64
}

// DefaultEntries is the default translation-cache capacity. The value
// matches the per-core TLB size of the paper's simulation environment.
const DefaultEntries = 256

// New returns an OLB whose translation cache holds entries translations.
func New(entries int) *OLB {
	if entries <= 0 {
		entries = 1
	}
	return &OLB{
		table:   make(map[uint64]Entry),
		cache:   make(map[uint64]uint64, entries),
		entries: entries,
	}
}

// Register installs the translation for an object ID. Registering
// LocalID is an error: ID 0 is architecturally reserved.
func (o *OLB) Register(id uint64, e Entry) error {
	if id == LocalID {
		return fmt.Errorf("olb: object ID 0 is reserved for the local PE")
	}
	if e.Node < 0 {
		return fmt.Errorf("olb: negative node %d for object ID %d", e.Node, id)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.table[id] = e
	return nil
}

// Translate resolves an object ID. hit reports whether the translation
// was already resident in the look-aside cache; a miss fills it. An
// unregistered ID returns an error (an addressing fault).
func (o *OLB) Translate(id uint64) (e Entry, hit bool, err error) {
	if id == LocalID {
		return Entry{}, false, fmt.Errorf("olb: object ID 0 is local and needs no translation")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.table[id]
	if !ok {
		o.faults++
		return Entry{}, false, fmt.Errorf("olb: unmapped object ID %d", id)
	}
	o.tick++
	if _, resident := o.cache[id]; resident {
		o.cache[id] = o.tick
		o.hits++
		return e, true, nil
	}
	o.misses++
	if len(o.cache) >= o.entries {
		var victim uint64
		oldest := ^uint64(0)
		for k, used := range o.cache {
			if used < oldest {
				oldest = used
				victim = k
			}
		}
		delete(o.cache, victim)
	}
	o.cache[id] = o.tick
	return e, false, nil
}

// IDs returns every registered object ID in ascending order.
func (o *OLB) IDs() []uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	ids := make([]uint64, 0, len(o.table))
	for id := range o.table {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Hits returns the number of translations served from the cache.
func (o *OLB) Hits() uint64 { o.mu.Lock(); defer o.mu.Unlock(); return o.hits }

// Misses returns the number of translations that required a fill.
func (o *OLB) Misses() uint64 { o.mu.Lock(); defer o.mu.Unlock(); return o.misses }

// Faults returns the number of unregistered-ID translation attempts.
func (o *OLB) Faults() uint64 { o.mu.Lock(); defer o.mu.Unlock(); return o.faults }
