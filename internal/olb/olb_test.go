package olb

import (
	"testing"
	"testing/quick"
)

func TestRegisterAndTranslate(t *testing.T) {
	o := New(4)
	if err := o.Register(1, Entry{Node: 0, Base: 0x10000}); err != nil {
		t.Fatal(err)
	}
	if err := o.Register(2, Entry{Node: 1, Base: 0x10000}); err != nil {
		t.Fatal(err)
	}
	e, hit, err := o.Translate(2)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first translation must be a cache miss")
	}
	if e.Node != 1 || e.Base != 0x10000 {
		t.Errorf("entry = %+v", e)
	}
	_, hit, err = o.Translate(2)
	if err != nil || !hit {
		t.Errorf("second translation must hit: hit=%v err=%v", hit, err)
	}
}

func TestLocalIDReserved(t *testing.T) {
	o := New(4)
	if err := o.Register(LocalID, Entry{}); err == nil {
		t.Error("registering ID 0 must fail")
	}
	if _, _, err := o.Translate(LocalID); err == nil {
		t.Error("translating ID 0 must fail: it is local by definition")
	}
}

func TestUnmappedIDFaults(t *testing.T) {
	o := New(4)
	if _, _, err := o.Translate(99); err == nil {
		t.Error("unmapped ID must fault")
	}
	if o.Faults() != 1 {
		t.Errorf("faults = %d, want 1", o.Faults())
	}
}

func TestNegativeNodeRejected(t *testing.T) {
	o := New(4)
	if err := o.Register(1, Entry{Node: -1}); err == nil {
		t.Error("negative node must be rejected")
	}
}

func TestCacheEviction(t *testing.T) {
	o := New(2)
	for id := uint64(1); id <= 3; id++ {
		if err := o.Register(id, Entry{Node: int(id)}); err != nil {
			t.Fatal(err)
		}
	}
	o.Translate(1) // miss, fill
	o.Translate(2) // miss, fill
	o.Translate(3) // miss, evict 1
	if _, hit, _ := o.Translate(1); hit {
		t.Error("ID 1 should have been evicted")
	}
	// Backing table still resolves correctly after eviction.
	e, _, err := o.Translate(3)
	if err != nil || e.Node != 3 {
		t.Errorf("backing table lost entry: %+v %v", e, err)
	}
	if o.Hits() == 0 || o.Misses() == 0 {
		t.Error("statistics not recorded")
	}
}

func TestTranslationIsStable(t *testing.T) {
	o := New(8)
	f := func(idRaw uint64, node uint8, base uint64) bool {
		id := idRaw%1000 + 1 // nonzero
		want := Entry{Node: int(node), Base: base}
		if err := o.Register(id, want); err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			e, _, err := o.Translate(id)
			if err != nil || e != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIDsSorted(t *testing.T) {
	o := New(4)
	for _, id := range []uint64{5, 1, 3} {
		o.Register(id, Entry{Node: int(id)})
	}
	ids := o.IDs()
	want := []uint64{1, 3, 5}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}
