package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopologyHops(t *testing.T) {
	cases := []struct {
		topo          Topology
		src, dst, hop int
	}{
		{FullyConnected{8}, 0, 0, 0},
		{FullyConnected{8}, 0, 7, 1},
		{FullyConnected{8}, 3, 5, 1},
		{Ring{8}, 0, 1, 1},
		{Ring{8}, 0, 4, 4},
		{Ring{8}, 0, 7, 1}, // wraps
		{Ring{8}, 2, 6, 4},
		{Torus2D{4, 2}, 0, 3, 1}, // (0,0)->(3,0): wrap distance 1
		{Torus2D{4, 2}, 0, 5, 2}, // (0,0)->(1,1)
		{Torus2D{4, 2}, 0, 0, 0},
		{Hypercube{3}, 0, 7, 3},
		{Hypercube{3}, 0, 1, 1},
		{Hypercube{3}, 5, 5, 0},
		{Hypercube{4}, 0b0101, 0b1010, 4},
	}
	for _, c := range cases {
		if got := c.topo.Hops(c.src, c.dst); got != c.hop {
			t.Errorf("%s: Hops(%d,%d) = %d, want %d", c.topo.Name(), c.src, c.dst, got, c.hop)
		}
	}
}

func TestTopologyProperties(t *testing.T) {
	topos := []Topology{FullyConnected{7}, Ring{7}, Torus2D{3, 3}, Hypercube{3}}
	for _, topo := range topos {
		n := topo.Nodes()
		f := func(a, b uint8) bool {
			src, dst := int(a)%n, int(b)%n
			h := topo.Hops(src, dst)
			// Symmetry, identity, and non-negativity.
			return h == topo.Hops(dst, src) && (src != dst || h == 0) && h >= 0 &&
				(src == dst || h >= 1)
		}
		cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(5))}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

func TestTransitCost(t *testing.T) {
	cfg := Config{InjectionOverhead: 100, HopLatency: 50, ByteCost: 2, ReceiverGap: 10}
	f := MustNew(Ring{8}, cfg)
	// 0 -> 2 is 2 hops, 16 bytes.
	got := f.TransitCost(0, 2, 16)
	want := uint64(100 + 2*50 + 16*2)
	if got != want {
		t.Errorf("TransitCost = %d, want %d", got, want)
	}
	if f.TransitCost(3, 3, 0) != 100 {
		t.Errorf("self-send cost = %d, want injection only", f.TransitCost(3, 3, 0))
	}
}

func TestSendUncontended(t *testing.T) {
	cfg := Config{InjectionOverhead: 10, HopLatency: 5, ByteCost: 1, ReceiverGap: 3}
	f := MustNew(FullyConnected{4}, cfg)
	arrive, err := f.Send(0, 1, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(100 + 10 + 5 + 8)
	if arrive != want {
		t.Errorf("arrive = %d, want %d", arrive, want)
	}
	if f.Messages() != 1 || f.Bytes() != 8 {
		t.Errorf("stats: messages=%d bytes=%d", f.Messages(), f.Bytes())
	}
	if f.ContentionCycles() != 0 {
		t.Errorf("uncontended send recorded %d stall cycles", f.ContentionCycles())
	}
}

func TestSendContention(t *testing.T) {
	cfg := Config{InjectionOverhead: 0, HopLatency: 0, ByteCost: 0, ReceiverGap: 100}
	f := MustNew(FullyConnected{4}, cfg)
	// Three simultaneous messages to node 3 serialise at its receiver.
	a1, _ := f.Send(0, 3, 0, 0)
	a2, _ := f.Send(1, 3, 0, 0)
	a3, _ := f.Send(2, 3, 0, 0)
	if a1 != 0 || a2 != 100 || a3 != 200 {
		t.Errorf("arrivals = %d,%d,%d; want 0,100,200", a1, a2, a3)
	}
	if f.ContentionCycles() != 300 {
		t.Errorf("contention = %d, want 300", f.ContentionCycles())
	}
	// A message to a different node is unaffected.
	a4, _ := f.Send(0, 1, 0, 0)
	if a4 != 0 {
		t.Errorf("cross-destination message delayed: %d", a4)
	}
}

func TestSwitchContention(t *testing.T) {
	// With a switch service time configured, messages to *different*
	// destinations still queue at the shared switch.
	cfg := Config{ReceiverGap: 0, SwitchGap: 50}
	f := MustNew(FullyConnected{4}, cfg)
	a1, _ := f.Send(0, 1, 0, 0)
	a2, _ := f.Send(2, 3, 0, 0)
	if a1 != 0 || a2 != 50 {
		t.Errorf("switch arrivals = %d,%d; want 0,50", a1, a2)
	}
}

func TestDriftedClocksDoNotContend(t *testing.T) {
	// Messages whose virtual timestamps are far apart land in different
	// congestion windows and must not queue behind each other, even
	// though they are issued back-to-back in real time.
	f := MustNew(FullyConnected{2}, Config{ReceiverGap: 500})
	a1, _ := f.Send(0, 1, 0, 5_000_000)
	a2, _ := f.Send(0, 1, 0, 1_000) // virtually much earlier
	if a1 != 5_000_000 || a2 != 1_000 {
		t.Errorf("arrivals = %d,%d; drift created false contention", a1, a2)
	}
	if f.ContentionCycles() != 0 {
		t.Errorf("contention = %d, want 0", f.ContentionCycles())
	}
}

func TestQueueCapBoundsDelay(t *testing.T) {
	cfg := Config{ReceiverGap: 1000, CongestionWindow: 100, QueueCap: 2}
	f := MustNew(FullyConnected{2}, cfg)
	var last uint64
	for i := 0; i < 50; i++ {
		last, _ = f.Send(0, 1, 0, 0)
	}
	if last > 200 {
		t.Errorf("delay %d exceeds the 2-window cap", last)
	}
}

func TestSendValidation(t *testing.T) {
	f := MustNew(Ring{4}, DefaultConfig())
	if _, err := f.Send(-1, 0, 0, 0); err == nil {
		t.Error("negative src must fail")
	}
	if _, err := f.Send(0, 4, 0, 0); err == nil {
		t.Error("dst out of range must fail")
	}
	if _, err := f.Send(0, 1, -5, 0); err == nil {
		t.Error("negative size must fail")
	}
}

func TestReset(t *testing.T) {
	f := MustNew(FullyConnected{2}, Config{ReceiverGap: 50})
	f.Send(0, 1, 100, 0)
	f.Reset()
	if f.Messages() != 0 || f.Bytes() != 0 || f.ContentionCycles() != 0 {
		t.Error("reset did not clear statistics")
	}
	arrive, _ := f.Send(0, 1, 0, 0)
	if arrive != 0 {
		t.Errorf("reset did not clear receiver occupancy: arrive=%d", arrive)
	}
}

func TestMessageConfigIsHeavier(t *testing.T) {
	// Sanity of the §3.1 claim encoded in the two presets: the
	// message-passing transport must cost more per message than the
	// xBGAS one-sided transport.
	x := DefaultConfig()
	m := MessageConfig()
	if m.InjectionOverhead <= x.InjectionOverhead {
		t.Error("message-passing injection should exceed xBGAS user-space injection")
	}
	if m.ReceiverGap <= x.ReceiverGap {
		t.Error("message-passing receiver gap should exceed xBGAS gap")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil topology must fail")
	}
	if _, err := New(Ring{0}, DefaultConfig()); err == nil {
		t.Error("empty topology must fail")
	}
}

func TestConcurrentSends(t *testing.T) {
	f := MustNew(FullyConnected{8}, DefaultConfig())
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(src int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				if _, err := f.Send(src, (src+i)%8, 64, uint64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if f.Messages() != 800 {
		t.Errorf("messages = %d, want 800", f.Messages())
	}
}

func TestLinkPartition(t *testing.T) {
	f := MustNew(FullyConnected{3}, DefaultConfig())
	f.SetLinkState(0, 1, false)
	if _, err := f.Send(0, 1, 8, 0); err == nil {
		t.Error("send over a down link must fail")
	}
	// Direction matters, and other links stay up.
	if _, err := f.Send(1, 0, 8, 0); err != nil {
		t.Errorf("reverse link should be up: %v", err)
	}
	if _, err := f.Send(0, 2, 8, 0); err != nil {
		t.Errorf("unrelated link should be up: %v", err)
	}
	if f.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", f.Dropped())
	}
	f.SetLinkState(0, 1, true)
	if _, err := f.Send(0, 1, 8, 0); err != nil {
		t.Errorf("restored link should work: %v", err)
	}
}

func TestTrafficMatrix(t *testing.T) {
	f := MustNew(FullyConnected{3}, DefaultConfig())
	f.Send(0, 1, 8, 0)
	f.Send(0, 1, 16, 0)
	f.Send(2, 0, 4, 0)
	msgs, bytes := f.Traffic()
	if msgs[0][1] != 2 || bytes[0][1] != 24 {
		t.Errorf("0->1: %d msgs %d bytes", msgs[0][1], bytes[0][1])
	}
	if msgs[2][0] != 1 || bytes[2][0] != 4 {
		t.Errorf("2->0: %d msgs %d bytes", msgs[2][0], bytes[2][0])
	}
	if msgs[1][2] != 0 {
		t.Errorf("1->2 should be empty")
	}
	f.Reset()
	msgs, _ = f.Traffic()
	if msgs[0][1] != 0 {
		t.Error("reset did not clear the matrix")
	}
}
