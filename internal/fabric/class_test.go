package fabric

import "testing"

// Per-link-class accounting: grouped topologies split every NIC's
// traffic into intra- and inter-node shares; flat topologies have no
// node-local links, so everything books as inter.

func TestClassSplitGrouped(t *testing.T) {
	cfg := Config{InjectionOverhead: 10, HopLatency: 5, ByteCost: 1, ReceiverGap: 3}
	f := MustNew(Grouped{PerNode: 2, N: 4}, cfg) // nodes {0,1} and {2,3}
	if !f.ClassedTopo() {
		t.Fatal("grouped fabric does not report ClassedTopo")
	}
	if _, err := f.Send(0, 1, 8, 100); err != nil { // intra: same node
		t.Fatal(err)
	}
	if _, err := f.Send(0, 2, 16, 100); err != nil { // inter: crosses nodes
		t.Fatal(err)
	}
	st := f.NICStats()
	if st[1].Intra.Msgs != 1 || st[1].Intra.Bytes != 8 {
		t.Errorf("NIC 1 intra = %+v, want 1 msg / 8 B", st[1].Intra)
	}
	if st[1].Inter.Msgs != 0 {
		t.Errorf("NIC 1 inter = %+v, want empty", st[1].Inter)
	}
	if st[2].Inter.Msgs != 1 || st[2].Inter.Bytes != 16 {
		t.Errorf("NIC 2 inter = %+v, want 1 msg / 16 B", st[2].Inter)
	}
	if st[2].Intra.Msgs != 0 {
		t.Errorf("NIC 2 intra = %+v, want empty", st[2].Intra)
	}
	// The class split must always sum to the NIC totals.
	for i, s := range st {
		if s.Intra.Msgs+s.Inter.Msgs != s.Msgs {
			t.Errorf("NIC %d: class msgs %d+%d != total %d", i, s.Intra.Msgs, s.Inter.Msgs, s.Msgs)
		}
		if s.Intra.Bytes+s.Inter.Bytes != s.Bytes {
			t.Errorf("NIC %d: class bytes %d+%d != total %d", i, s.Intra.Bytes, s.Inter.Bytes, s.Bytes)
		}
		if s.Intra.StallCycles+s.Inter.StallCycles != s.StallCycles {
			t.Errorf("NIC %d: class stall %d+%d != total %d", i,
				s.Intra.StallCycles, s.Inter.StallCycles, s.StallCycles)
		}
	}
}

func TestClassStallAttribution(t *testing.T) {
	// Serialise three inter-node messages at one receiver: the queueing
	// delay must land in the inter class.
	cfg := Config{ReceiverGap: 100}
	f := MustNew(Grouped{PerNode: 2, N: 4}, cfg)
	for i := 0; i < 3; i++ {
		if _, err := f.Send(0, 2, 8, 100); err != nil {
			t.Fatal(err)
		}
	}
	st := f.NICStats()[2]
	if st.Inter.StallCycles == 0 {
		t.Error("serialised inter traffic recorded no inter-class stall")
	}
	if st.Intra.StallCycles != 0 {
		t.Errorf("intra class stall = %d, want 0", st.Intra.StallCycles)
	}
	if st.Inter.StallCycles != st.StallCycles {
		t.Errorf("inter stall %d != NIC stall %d", st.Inter.StallCycles, st.StallCycles)
	}
}

func TestClassFlatBooksInter(t *testing.T) {
	cfg := Config{InjectionOverhead: 10}
	f := MustNew(FullyConnected{4}, cfg)
	if f.ClassedTopo() {
		t.Fatal("flat fabric reports ClassedTopo")
	}
	if _, err := f.Send(0, 1, 8, 100); err != nil {
		t.Fatal(err)
	}
	st := f.NICStats()[1]
	if st.Intra.Msgs != 0 || st.Inter.Msgs != 1 {
		t.Errorf("flat send booked intra=%d inter=%d, want 0/1", st.Intra.Msgs, st.Inter.Msgs)
	}
}

func TestClassCountersResetWithFabric(t *testing.T) {
	f := MustNew(Grouped{PerNode: 2, N: 4}, Config{ReceiverGap: 50})
	for i := 0; i < 2; i++ {
		if _, err := f.Send(0, 2, 8, 100); err != nil {
			t.Fatal(err)
		}
	}
	f.Reset()
	st := f.NICStats()[2]
	if st.Inter != (ClassStats{}) || st.Intra != (ClassStats{}) {
		t.Errorf("Reset left class counters: intra=%+v inter=%+v", st.Intra, st.Inter)
	}
}

// TestSendZeroAllocsWithoutObs guards the per-class accounting added
// to the Send hot path: with no observability run attached it must
// stay allocation-free.
func TestSendZeroAllocsWithoutObs(t *testing.T) {
	f := MustNew(Grouped{PerNode: 2, N: 4}, Config{InjectionOverhead: 10, ReceiverGap: 3})
	if _, err := f.Send(0, 2, 8, 100); err != nil {
		t.Fatal(err)
	}
	now := uint64(1000)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := f.Send(0, 2, 8, now); err != nil {
			t.Fatal(err)
		}
		now += 10
	})
	if allocs != 0 {
		t.Errorf("Send with per-class counters and no obs: %.1f allocs/op, want 0", allocs)
	}
}
