// Package fabric models the inter-node communication substrate of the
// xBGAS simulation environment. The paper's infrastructure uses MPICH
// 3.2 purely as the transport between Spike instances (§5.1); this
// package replaces it with an explicit α–β cost model plus receiver-side
// contention, parameterised by network topology.
//
// The binomial-tree collectives of paper §4 are chosen specifically to
// "forgo making any assumptions about network topology" and to work on
// either "a torus or hypercube topology"; the Topology interface lets
// the benchmarks demonstrate exactly that claim.
package fabric

import (
	"fmt"
	"math/bits"
)

// Topology yields the hop distance between nodes. Implementations must
// be immutable and safe for concurrent use.
type Topology interface {
	// Name identifies the topology in reports.
	Name() string
	// Nodes returns the number of nodes.
	Nodes() int
	// Hops returns the minimal hop count from src to dst. Hops(n, n)
	// must be 0.
	Hops(src, dst int) int
}

// FullyConnected is an all-to-all topology: every remote pair is one hop
// apart. This models the paper's single-switch evaluation cluster.
type FullyConnected struct{ N int }

// Name implements Topology.
func (f FullyConnected) Name() string { return "fully-connected" }

// Nodes implements Topology.
func (f FullyConnected) Nodes() int { return f.N }

// Hops implements Topology.
func (f FullyConnected) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	return 1
}

// Ring is a bidirectional ring.
type Ring struct{ N int }

// Name implements Topology.
func (r Ring) Name() string { return "ring" }

// Nodes implements Topology.
func (r Ring) Nodes() int { return r.N }

// Hops implements Topology.
func (r Ring) Hops(src, dst int) int {
	if r.N == 0 {
		return 0
	}
	d := src - dst
	if d < 0 {
		d = -d
	}
	if wrap := r.N - d; wrap < d {
		return wrap
	}
	return d
}

// Torus2D is a W×H bidirectional 2-D torus; node n sits at
// (n mod W, n / W).
type Torus2D struct{ W, H int }

// Name implements Topology.
func (t Torus2D) Name() string { return fmt.Sprintf("torus-%dx%d", t.W, t.H) }

// Nodes implements Topology.
func (t Torus2D) Nodes() int { return t.W * t.H }

// Hops implements Topology.
func (t Torus2D) Hops(src, dst int) int {
	return ringDist(src%t.W, dst%t.W, t.W) + ringDist(src/t.W, dst/t.W, t.H)
}

func ringDist(a, b, n int) int {
	if n <= 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap := n - d; wrap < d {
		return wrap
	}
	return d
}

// Hypercube is a 2^Dim-node binary hypercube; the hop count between two
// nodes is the Hamming distance of their labels.
type Hypercube struct{ Dim int }

// Name implements Topology.
func (h Hypercube) Name() string { return fmt.Sprintf("hypercube-%d", h.Dim) }

// Nodes implements Topology.
func (h Hypercube) Nodes() int { return 1 << h.Dim }

// Hops implements Topology.
func (h Hypercube) Hops(src, dst int) int {
	return bits.OnesCount(uint(src ^ dst))
}
