// Package fabric models the inter-node communication substrate of the
// xBGAS simulation environment. The paper's infrastructure uses MPICH
// 3.2 purely as the transport between Spike instances (§5.1); this
// package replaces it with an explicit α–β cost model plus receiver-side
// contention, parameterised by network topology.
//
// The binomial-tree collectives of paper §4 are chosen specifically to
// "forgo making any assumptions about network topology" and to work on
// either "a torus or hypercube topology"; the Topology interface lets
// the benchmarks demonstrate exactly that claim.
package fabric

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Topology yields the hop distance between nodes. Implementations must
// be immutable and safe for concurrent use.
type Topology interface {
	// Name identifies the topology in reports.
	Name() string
	// Nodes returns the number of nodes.
	Nodes() int
	// Hops returns the minimal hop count from src to dst. Hops(n, n)
	// must be 0.
	Hops(src, dst int) int
}

// FullyConnected is an all-to-all topology: every remote pair is one hop
// apart. This models the paper's single-switch evaluation cluster.
type FullyConnected struct{ N int }

// Name implements Topology.
func (f FullyConnected) Name() string { return "fully-connected" }

// Nodes implements Topology.
func (f FullyConnected) Nodes() int { return f.N }

// Hops implements Topology.
func (f FullyConnected) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	return 1
}

// Ring is a bidirectional ring.
type Ring struct{ N int }

// Name implements Topology.
func (r Ring) Name() string { return "ring" }

// Nodes implements Topology.
func (r Ring) Nodes() int { return r.N }

// Hops implements Topology.
func (r Ring) Hops(src, dst int) int {
	if r.N == 0 {
		return 0
	}
	d := src - dst
	if d < 0 {
		d = -d
	}
	if wrap := r.N - d; wrap < d {
		return wrap
	}
	return d
}

// Torus2D is a W×H bidirectional 2-D torus; node n sits at
// (n mod W, n / W).
type Torus2D struct{ W, H int }

// Name implements Topology.
func (t Torus2D) Name() string { return fmt.Sprintf("torus-%dx%d", t.W, t.H) }

// Nodes implements Topology.
func (t Torus2D) Nodes() int { return t.W * t.H }

// Hops implements Topology.
func (t Torus2D) Hops(src, dst int) int {
	return ringDist(src%t.W, dst%t.W, t.W) + ringDist(src/t.W, dst/t.W, t.H)
}

func ringDist(a, b, n int) int {
	if n <= 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap := n - d; wrap < d {
		return wrap
	}
	return d
}

// Hypercube is a 2^Dim-node binary hypercube; the hop count between two
// nodes is the Hamming distance of their labels.
type Hypercube struct{ Dim int }

// Name implements Topology.
func (h Hypercube) Name() string { return fmt.Sprintf("hypercube-%d", h.Dim) }

// Nodes implements Topology.
func (h Hypercube) Nodes() int { return 1 << h.Dim }

// Hops implements Topology.
func (h Hypercube) Hops(src, dst int) int {
	return bits.OnesCount(uint(src ^ dst))
}

// LinkClass partitions a topology's links into cost classes. The flat
// topologies have a single class; grouped topologies distinguish the
// on-node fabric from the inter-node network, and the Config's
// Intra*/Inter* overrides price them differently.
type LinkClass uint8

// Link classes.
const (
	// ClassIntra: both endpoints share a physical node.
	ClassIntra LinkClass = iota
	// ClassInter: the message crosses the inter-node network.
	ClassInter
)

// Classed is implemented by topologies whose links fall into more than
// one cost class. Class is only asked for src != dst.
type Classed interface {
	Topology
	Class(src, dst int) LinkClass
}

// NodeGrouper is implemented by topologies that pack several PEs onto
// one physical node; consumers (the hierarchical planners, the cost
// model) read the grouping to build two-level schedules. PEsPerNode is
// the nominal node width; when the PE count is not a multiple the last
// node is partial.
type NodeGrouper interface {
	PEsPerNode() int
}

// Grouped models a cluster of multi-PE nodes behind one switch: PE p
// lives on node p/PerNode, so intra-node pairs are one (on-node) hop
// apart and inter-node pairs pay two hops — out through the node's NIC,
// across the switch, and in. The last node is partial when N is not a
// multiple of PerNode.
type Grouped struct {
	PerNode int // PEs per node (≥ 1)
	N       int // total PEs
}

// Name implements Topology.
func (g Grouped) Name() string {
	nodes := 0
	if g.PerNode > 0 {
		nodes = (g.N + g.PerNode - 1) / g.PerNode
	}
	return fmt.Sprintf("grouped-%dx%d", nodes, g.PerNode)
}

// Nodes implements Topology.
func (g Grouped) Nodes() int { return g.N }

// NodeOf returns the physical node of PE p.
func (g Grouped) NodeOf(p int) int {
	if g.PerNode <= 1 {
		return p
	}
	return p / g.PerNode
}

// Hops implements Topology.
func (g Grouped) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	if g.NodeOf(src) == g.NodeOf(dst) {
		return 1
	}
	return 2
}

// Class implements Classed.
func (g Grouped) Class(src, dst int) LinkClass {
	if g.NodeOf(src) == g.NodeOf(dst) {
		return ClassIntra
	}
	return ClassInter
}

// PEsPerNode implements NodeGrouper.
func (g Grouped) PEsPerNode() int {
	if g.PerNode < 1 {
		return 1
	}
	return g.PerNode
}

// Dragonfly is the grouped variant of a dragonfly network: nodes of
// PerNode PEs, NodesPer nodes per router group, all-to-all links inside
// a group and one global hop between groups. Intra-node pairs are one
// hop; inter-node pairs inside a group pay two; pairs across groups pay
// three (local, global, local).
type Dragonfly struct {
	NodesPer int // nodes per router group (≥ 1)
	PerNode  int // PEs per node (≥ 1)
	N        int // total PEs
}

// Name implements Topology.
func (d Dragonfly) Name() string {
	per := d.PEsPerNode()
	nodes := (d.N + per - 1) / per
	np := d.NodesPer
	if np < 1 {
		np = 1
	}
	groups := (nodes + np - 1) / np
	return fmt.Sprintf("dragonfly-%dx%dx%d", groups, np, per)
}

// Nodes implements Topology.
func (d Dragonfly) Nodes() int { return d.N }

// NodeOf returns the physical node of PE p.
func (d Dragonfly) NodeOf(p int) int { return p / d.PEsPerNode() }

// groupOf returns the router group of PE p.
func (d Dragonfly) groupOf(p int) int {
	np := d.NodesPer
	if np < 1 {
		np = 1
	}
	return d.NodeOf(p) / np
}

// Hops implements Topology.
func (d Dragonfly) Hops(src, dst int) int {
	switch {
	case src == dst:
		return 0
	case d.NodeOf(src) == d.NodeOf(dst):
		return 1
	case d.groupOf(src) == d.groupOf(dst):
		return 2
	}
	return 3
}

// Class implements Classed.
func (d Dragonfly) Class(src, dst int) LinkClass {
	if d.NodeOf(src) == d.NodeOf(dst) {
		return ClassIntra
	}
	return ClassInter
}

// PEsPerNode implements NodeGrouper.
func (d Dragonfly) PEsPerNode() int {
	if d.PerNode < 1 {
		return 1
	}
	return d.PerNode
}

// ParseTopo builds a topology for n PEs from a -topo spec:
//
//	flat | full          fully connected (the default)
//	ring                 bidirectional ring
//	torus | torus:WxH    2-D torus (auto-factored near-square when
//	                     W and H are omitted; W·H must equal n)
//	hypercube            binary hypercube (n must be a power of two)
//	grouped:P            nodes of P PEs each (⌈n/P⌉ nodes)
//	grouped:GxP          G nodes of P PEs; n may leave the last node
//	                     partial but must exceed (G−1)·P
//	dragonfly:RxP        router groups of R nodes of P PEs each
func ParseTopo(spec string, n int) (Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("fabric: topology for %d PEs", n)
	}
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	dims, err := parseDims(arg)
	if err != nil {
		return nil, fmt.Errorf("fabric: -topo %q: %v", spec, err)
	}
	switch name {
	case "", "flat", "full", "fully-connected":
		return FullyConnected{N: n}, nil
	case "ring":
		return Ring{N: n}, nil
	case "torus":
		var w, h int
		switch len(dims) {
		case 0:
			w = torusWidth(n)
			if w == 0 {
				return nil, fmt.Errorf("fabric: -topo torus: %d PEs have no 2-D factorisation", n)
			}
			h = n / w
		case 2:
			w, h = dims[0], dims[1]
		default:
			return nil, fmt.Errorf("fabric: -topo %q: want torus or torus:WxH", spec)
		}
		if w*h != n {
			return nil, fmt.Errorf("fabric: -topo %q: %dx%d torus needs %d PEs, runtime has %d", spec, w, h, w*h, n)
		}
		return Torus2D{W: w, H: h}, nil
	case "hypercube":
		d := 0
		for (1 << d) < n {
			d++
		}
		if (1 << d) != n {
			return nil, fmt.Errorf("fabric: -topo hypercube: %d PEs is not a power of two", n)
		}
		return Hypercube{Dim: d}, nil
	case "grouped":
		switch len(dims) {
		case 1:
			return Grouped{PerNode: dims[0], N: n}, nil
		case 2:
			g, p := dims[0], dims[1]
			if n > g*p || n <= (g-1)*p {
				return nil, fmt.Errorf("fabric: -topo %q: %d nodes of %d PEs hold %d..%d PEs, runtime has %d",
					spec, g, p, (g-1)*p+1, g*p, n)
			}
			return Grouped{PerNode: p, N: n}, nil
		}
		return nil, fmt.Errorf("fabric: -topo %q: want grouped:P or grouped:GxP", spec)
	case "dragonfly":
		if len(dims) != 2 {
			return nil, fmt.Errorf("fabric: -topo %q: want dragonfly:RxP (R nodes per group, P PEs per node)", spec)
		}
		return Dragonfly{NodesPer: dims[0], PerNode: dims[1], N: n}, nil
	}
	return nil, fmt.Errorf("fabric: unknown topology %q (flat, ring, torus[:WxH], hypercube, grouped:[Gx]P, dragonfly:RxP)", spec)
}

// parseDims splits an "AxB"-style dimension suffix into positive ints.
func parseDims(arg string) ([]int, error) {
	if arg == "" {
		return nil, nil
	}
	parts := strings.Split(arg, "x")
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

// torusWidth returns the largest divisor of n at most √n (the
// near-square factorisation), or 0 for primes and n < 4.
func torusWidth(n int) int {
	for w := intSqrt(n); w >= 2; w-- {
		if n%w == 0 {
			return w
		}
	}
	return 0
}

func intSqrt(n int) int {
	w := 0
	for (w+1)*(w+1) <= n {
		w++
	}
	return w
}
