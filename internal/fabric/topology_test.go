package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Metric-property tests for the topology family at non-power-of-two
// sizes: Hops must be a metric (identity, symmetry, triangle
// inequality) on every topology, or the cost model prices impossible
// routes.

func TestHopsMetricProperties(t *testing.T) {
	topos := []Topology{
		Ring{N: 13},
		Ring{N: 100},
		Torus2D{W: 5, H: 7},
		Torus2D{W: 3, H: 11},
		Grouped{PerNode: 5, N: 12},  // last node partial
		Grouped{PerNode: 16, N: 96}, // even nodes
		Grouped{PerNode: 1, N: 9},   // degenerate: every PE its own node
		Dragonfly{NodesPer: 3, PerNode: 4, N: 50},
		FullyConnected{N: 23},
	}
	for _, topo := range topos {
		n := topo.Nodes()
		f := func(a, b, c uint16) bool {
			x, y, z := int(a)%n, int(b)%n, int(c)%n
			hxy := topo.Hops(x, y)
			// Identity and positivity.
			if topo.Hops(x, x) != 0 || (x != y && hxy < 1) {
				return false
			}
			// Symmetry.
			if hxy != topo.Hops(y, x) {
				return false
			}
			// Triangle inequality through any intermediate z.
			return hxy <= topo.Hops(x, z)+topo.Hops(z, y)
		}
		cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(7))}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

func TestGroupedClasses(t *testing.T) {
	g := Grouped{PerNode: 4, N: 10} // nodes {0..3} {4..7} {8,9}
	cases := []struct {
		src, dst int
		class    LinkClass
		hops     int
	}{
		{0, 3, ClassIntra, 1},
		{0, 4, ClassInter, 2},
		{8, 9, ClassIntra, 1},
		{7, 8, ClassInter, 2},
	}
	for _, c := range cases {
		if got := g.Class(c.src, c.dst); got != c.class {
			t.Errorf("Class(%d,%d) = %v, want %v", c.src, c.dst, got, c.class)
		}
		if got := g.Hops(c.src, c.dst); got != c.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
	if got := g.PEsPerNode(); got != 4 {
		t.Errorf("PEsPerNode = %d, want 4", got)
	}
}

func TestDragonflyHops(t *testing.T) {
	d := Dragonfly{NodesPer: 2, PerNode: 3, N: 18} // groups of 6 PEs
	cases := []struct{ src, dst, hops int }{
		{0, 0, 0},
		{0, 2, 1},  // same node
		{0, 3, 2},  // same group, other node
		{0, 6, 3},  // other group
		{5, 17, 3}, // group 0 to group 2
	}
	for _, c := range cases {
		if got := d.Hops(c.src, c.dst); got != c.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
	if d.Class(0, 2) != ClassIntra || d.Class(0, 3) != ClassInter {
		t.Error("dragonfly link classes wrong")
	}
}

func TestParseTopo(t *testing.T) {
	good := []struct {
		spec string
		n    int
		name string
	}{
		{"", 8, "fully-connected"},
		{"flat", 8, "fully-connected"},
		{"ring", 12, "ring"},
		{"torus", 12, "torus-3x4"},
		{"torus:32x32", 1024, "torus-32x32"},
		{"hypercube", 16, "hypercube-4"},
		{"grouped:16", 96, "grouped-6x16"},
		{"grouped:8x16", 128, "grouped-8x16"},
		{"grouped:8x16", 121, "grouped-8x16"}, // partial last node
		{"dragonfly:4x8", 256, "dragonfly-8x4x8"},
	}
	for _, c := range good {
		topo, err := ParseTopo(c.spec, c.n)
		if err != nil {
			t.Errorf("ParseTopo(%q, %d): %v", c.spec, c.n, err)
			continue
		}
		if topo.Name() != c.name {
			t.Errorf("ParseTopo(%q, %d) = %s, want %s", c.spec, c.n, topo.Name(), c.name)
		}
		if topo.Nodes() != c.n {
			t.Errorf("ParseTopo(%q, %d): Nodes = %d", c.spec, c.n, topo.Nodes())
		}
	}
	bad := []struct {
		spec string
		n    int
	}{
		{"torus:4x4", 12},     // dims don't match n
		{"torus", 13},         // prime has no 2-D shape
		{"hypercube", 12},     // not a power of two
		{"grouped", 12},       // missing width
		{"grouped:8x16", 300}, // more PEs than G*P
		{"grouped:8x16", 112}, // fewer than (G-1)*P+1
		{"dragonfly:4", 64},
		{"mesh", 8},
		{"grouped:0", 8},
	}
	for _, c := range bad {
		if topo, err := ParseTopo(c.spec, c.n); err == nil {
			t.Errorf("ParseTopo(%q, %d) = %s, want error", c.spec, c.n, topo.Name())
		}
	}
}
