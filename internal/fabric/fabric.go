package fabric

import (
	"fmt"
	"sync"
)

// Config parameterises the network cost model. Times are in core cycles
// (the simulation's nominal clock is 1 GHz, so 1 cycle = 1 ns).
type Config struct {
	// InjectionOverhead is the fixed per-message software+NIC latency on
	// the sender, counted in every message's transit time. xBGAS remote
	// accesses issue "directly from the user-space" avoiding kernel
	// involvement (paper §3.1), so this is small; message-passing
	// baselines configure it much larger.
	InjectionOverhead uint64
	// IssueGap is the sender-side occupancy per message in a pipelined
	// (unrolled or non-blocking) element stream: a core can start a new
	// remote element operation at most once per IssueGap cycles. It is
	// the throughput counterpart of InjectionOverhead's latency.
	IssueGap uint64
	// HopLatency is the per-hop propagation cost (α term).
	HopLatency uint64
	// ByteCost is the per-byte serialisation cost (β term), in cycles
	// per byte.
	ByteCost uint64
	// ReceiverGap is the per-message service time at the receiving
	// NIC/memory port; concurrent senders to one node queue behind it.
	ReceiverGap uint64
	// SwitchGap is the per-message service time of the shared central
	// switch every message crosses. Aggregate traffic grows with the
	// PE count, so this is the resource whose saturation produces the
	// scaling knee at higher PE counts. Zero disables the switch model.
	SwitchGap uint64
	// SwitchByteCost is the per-byte component of switch service.
	SwitchByteCost uint64
	// CongestionWindow is the width, in cycles, of the occupancy
	// windows used by the contention model. Messages whose timestamps
	// fall in the same window queue behind each other's service time;
	// the windowed booking is insensitive to the real-time order in
	// which the per-PE goroutines issue their sends. Zero selects the
	// default.
	CongestionWindow uint64
	// QueueCap bounds the queueing delay of a single message to this
	// many windows (an overloaded resource drops to its service rate
	// rather than building unbounded backlog). Zero selects the
	// default.
	QueueCap uint64
}

const (
	defaultWindow   = 2048
	defaultQueueCap = 4
)

// DefaultConfig returns the xBGAS-style cost model used in the
// evaluation: cheap user-space injection, single-switch latency,
// 1 byte/cycle links, DMA-speed receiver service.
func DefaultConfig() Config {
	return Config{
		InjectionOverhead: 60,
		IssueGap:          20,
		HopLatency:        250,
		ByteCost:          1,
		ReceiverGap:       8,
		SwitchGap:         15,
		SwitchByteCost:    0,
	}
}

// MessageConfig returns a cost model representative of a two-sided
// message-passing transport: heavy injection (socket setup, handshakes,
// system calls — paper §3.1) and receiver-side matching costs.
func MessageConfig() Config {
	return Config{
		InjectionOverhead: 1500,
		IssueGap:          400,
		HopLatency:        250,
		ByteCost:          1,
		ReceiverGap:       400,
		SwitchGap:         15,
		SwitchByteCost:    0,
	}
}

// Fabric is a contention-aware network shared by all simulated nodes.
// It is safe for concurrent use by per-PE goroutines.
//
// Contention uses windowed booking: virtual time is divided into
// fixed-width windows, and every message books its service time at its
// destination (and at the shared switch) in the window of its send
// timestamp. A message's queueing delay is the service already booked
// in that window, capped at QueueCap windows. Because booking keys on
// virtual timestamps, PEs whose virtual clocks have drifted apart do
// not falsely contend, and the model is insensitive (up to window
// granularity) to the real-time order in which goroutines issue sends.
type Fabric struct {
	mu       sync.Mutex
	cfg      Config
	topo     Topology
	window   uint64
	queueCap uint64

	recvBusy   []map[uint64]uint64 // per node: window -> booked service
	switchBusy map[uint64]uint64
	downLinks  map[[2]int]bool // directed links taken down for fault injection

	messages uint64
	bytes    uint64
	stallCyc uint64 // cycles lost to queueing
	dropped  uint64 // sends refused on down links

	// matrix[src*n+dst] counts messages and payload bytes per directed
	// pair, for the traffic-matrix report.
	matMsgs  []uint64
	matBytes []uint64
}

// New builds a fabric over the given topology.
func New(topo Topology, cfg Config) (*Fabric, error) {
	if topo == nil || topo.Nodes() <= 0 {
		return nil, fmt.Errorf("fabric: topology with no nodes")
	}
	window := cfg.CongestionWindow
	if window == 0 {
		window = defaultWindow
	}
	qcap := cfg.QueueCap
	if qcap == 0 {
		qcap = defaultQueueCap
	}
	n := topo.Nodes()
	f := &Fabric{
		cfg:        cfg,
		topo:       topo,
		window:     window,
		queueCap:   qcap,
		recvBusy:   make([]map[uint64]uint64, n),
		switchBusy: make(map[uint64]uint64),
		matMsgs:    make([]uint64, n*n),
		matBytes:   make([]uint64, n*n),
	}
	for i := range f.recvBusy {
		f.recvBusy[i] = make(map[uint64]uint64)
	}
	return f, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(topo Topology, cfg Config) *Fabric {
	f, err := New(topo, cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Topology returns the fabric's topology.
func (f *Fabric) Topology() Topology { return f.topo }

// Config returns the fabric's cost model.
func (f *Fabric) Config() Config { return f.cfg }

// TransitCost returns the uncontended cost of moving n bytes from src to
// dst: injection + hops·α + n·β. A self-send costs only the injection
// overhead (the paper's runtime turns PE-local "remote" accesses into
// plain loads and stores, but collectives never self-send anyway).
func (f *Fabric) TransitCost(src, dst int, n int) uint64 {
	if n < 0 {
		n = 0
	}
	hops := uint64(f.topo.Hops(src, dst))
	return f.cfg.InjectionOverhead + hops*f.cfg.HopLatency + uint64(n)*f.cfg.ByteCost
}

// book records service cycles in a window map and returns the delay a
// new message experiences. The model is a fluid queue per window:
// service booked earlier in the window drains at one cycle per cycle,
// so a message queues only for the booked work that elapsed window time
// has not yet covered. Arrivals spaced wider than their service time
// therefore see no queue, while bursts and sustained overload do.
func (f *Fabric) book(m map[uint64]uint64, now, service uint64) uint64 {
	w := now / f.window
	elapsed := now % f.window
	booked := m[w]
	m[w] = booked + service
	if booked <= elapsed {
		return 0
	}
	queued := booked - elapsed
	if limit := f.queueCap * f.window; queued > limit {
		return limit
	}
	return queued
}

// Send models a message of n bytes leaving src at time now and returns
// the cycle at which it is fully received at dst. Messages sharing a
// congestion window queue behind each other at the destination NIC and
// at the shared switch; the resulting delay is recorded in
// ContentionCycles.
func (f *Fabric) Send(src, dst int, n int, now uint64) (arrive uint64, err error) {
	if src < 0 || src >= f.topo.Nodes() || dst < 0 || dst >= f.topo.Nodes() {
		return 0, fmt.Errorf("fabric: send %d->%d outside topology of %d nodes",
			src, dst, f.topo.Nodes())
	}
	if n < 0 {
		return 0, fmt.Errorf("fabric: negative message size %d", n)
	}
	transit := f.TransitCost(src, dst, n)
	recvSvc := f.cfg.ReceiverGap + uint64(n)*f.cfg.ByteCost

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.downLinks[[2]int{src, dst}] {
		f.dropped++
		return 0, fmt.Errorf("fabric: link %d->%d is down", src, dst)
	}
	queue := f.book(f.recvBusy[dst], now, recvSvc)
	if f.cfg.SwitchGap > 0 {
		switchSvc := f.cfg.SwitchGap + uint64(n)*f.cfg.SwitchByteCost
		if qs := f.book(f.switchBusy, now, switchSvc); qs > queue {
			queue = qs
		}
	}
	f.stallCyc += queue
	f.messages++
	f.bytes += uint64(n)
	idx := src*f.topo.Nodes() + dst
	f.matMsgs[idx]++
	f.matBytes[idx] += uint64(n)
	return now + queue + transit, nil
}

// SetLinkState marks the directed link src→dst up or down. Sends over
// a down link fail — the fault-injection hook used to test that
// runtime and collective error paths propagate cleanly instead of
// deadlocking.
func (f *Fabric) SetLinkState(src, dst int, up bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.downLinks == nil {
		f.downLinks = make(map[[2]int]bool)
	}
	if up {
		delete(f.downLinks, [2]int{src, dst})
	} else {
		f.downLinks[[2]int{src, dst}] = true
	}
}

// Dropped returns the number of sends refused because the link was
// down.
func (f *Fabric) Dropped() uint64 { f.mu.Lock(); defer f.mu.Unlock(); return f.dropped }

// Messages returns the number of messages sent.
func (f *Fabric) Messages() uint64 { f.mu.Lock(); defer f.mu.Unlock(); return f.messages }

// Bytes returns the total payload bytes sent.
func (f *Fabric) Bytes() uint64 { f.mu.Lock(); defer f.mu.Unlock(); return f.bytes }

// ContentionCycles returns the cumulative queueing delay experienced at
// busy receivers and the shared switch.
func (f *Fabric) ContentionCycles() uint64 { f.mu.Lock(); defer f.mu.Unlock(); return f.stallCyc }

// Traffic returns the per-directed-pair message and byte counts:
// msgs[src][dst] and bytes[src][dst].
func (f *Fabric) Traffic() (msgs, bytes [][]uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.topo.Nodes()
	msgs = make([][]uint64, n)
	bytes = make([][]uint64, n)
	for s := 0; s < n; s++ {
		msgs[s] = append([]uint64(nil), f.matMsgs[s*n:(s+1)*n]...)
		bytes[s] = append([]uint64(nil), f.matBytes[s*n:(s+1)*n]...)
	}
	return msgs, bytes
}

// Reset clears occupancy and statistics, for reuse between benchmark
// repetitions.
func (f *Fabric) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.recvBusy {
		f.recvBusy[i] = make(map[uint64]uint64)
	}
	f.switchBusy = make(map[uint64]uint64)
	f.messages, f.bytes, f.stallCyc, f.dropped = 0, 0, 0, 0
	for i := range f.matMsgs {
		f.matMsgs[i], f.matBytes[i] = 0, 0
	}
}
