package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xbgas/internal/obs"
)

// Config parameterises the network cost model. Times are in core cycles
// (the simulation's nominal clock is 1 GHz, so 1 cycle = 1 ns).
type Config struct {
	// InjectionOverhead is the fixed per-message software+NIC latency on
	// the sender, counted in every message's transit time. xBGAS remote
	// accesses issue "directly from the user-space" avoiding kernel
	// involvement (paper §3.1), so this is small; message-passing
	// baselines configure it much larger.
	InjectionOverhead uint64
	// IssueGap is the sender-side occupancy per message in a pipelined
	// (unrolled or non-blocking) element stream: a core can start a new
	// remote element operation at most once per IssueGap cycles. It is
	// the throughput counterpart of InjectionOverhead's latency.
	IssueGap uint64
	// HopLatency is the per-hop propagation cost (α term).
	HopLatency uint64
	// ByteCost is the per-byte serialisation cost (β term), in cycles
	// per byte.
	ByteCost uint64
	// ReceiverGap is the per-message service time at the receiving
	// NIC/memory port; concurrent senders to one node queue behind it.
	ReceiverGap uint64
	// SwitchGap is the per-message service time of the shared central
	// switch every message crosses. Aggregate traffic grows with the
	// PE count, so this is the resource whose saturation produces the
	// scaling knee at higher PE counts. Zero disables the switch model.
	SwitchGap uint64
	// SwitchByteCost is the per-byte component of switch service.
	SwitchByteCost uint64
	// CongestionWindow is the width, in cycles, of the occupancy
	// windows used by the contention model. Messages whose timestamps
	// fall in the same window queue behind each other's service time;
	// the windowed booking is insensitive to the real-time order in
	// which the per-PE goroutines issue their sends. Zero selects the
	// default.
	CongestionWindow uint64
	// QueueCap bounds the queueing delay of a single message to this
	// many windows (an overloaded resource drops to its service rate
	// rather than building unbounded backlog). Zero selects the
	// default.
	QueueCap uint64
	// IntraHopLatency overrides HopLatency on intra-node hops of a
	// Classed topology (Grouped, Dragonfly): PEs sharing a node talk
	// over the on-node fabric, not the network. Zero keeps HopLatency.
	// Inert on single-class topologies.
	IntraHopLatency uint64
	// IntraByteCost overrides ByteCost on intra-node hops of a Classed
	// topology. Zero keeps ByteCost.
	IntraByteCost uint64
	// InterByteCost overrides ByteCost on inter-node hops of a Classed
	// topology (the network link is narrower than the on-node fabric).
	// Zero keeps ByteCost.
	InterByteCost uint64
}

const (
	defaultWindow   = 2048
	defaultQueueCap = 4
)

// DefaultConfig returns the xBGAS-style cost model used in the
// evaluation: cheap user-space injection, single-switch latency,
// 1 byte/cycle links, DMA-speed receiver service. On grouped (Classed)
// topologies the intra-node overrides make the on-node fabric ~5×
// lower-latency and 4× wider than the inter-node network
// (intra α = 60+40 = 100 vs inter α = 60+2·250 = 560 cycles); on flat
// topologies they are inert.
func DefaultConfig() Config {
	return Config{
		InjectionOverhead: 60,
		IssueGap:          20,
		HopLatency:        250,
		ByteCost:          1,
		ReceiverGap:       8,
		SwitchGap:         15,
		SwitchByteCost:    0,
		IntraHopLatency:   40,
		IntraByteCost:     1,
		InterByteCost:     4,
	}
}

// MessageConfig returns a cost model representative of a two-sided
// message-passing transport: heavy injection (socket setup, handshakes,
// system calls — paper §3.1) and receiver-side matching costs.
func MessageConfig() Config {
	return Config{
		InjectionOverhead: 1500,
		IssueGap:          400,
		HopLatency:        250,
		ByteCost:          1,
		ReceiverGap:       400,
		SwitchGap:         15,
		SwitchByteCost:    0,
		IntraHopLatency:   40,
		IntraByteCost:     1,
		InterByteCost:     4,
	}
}

// shard is the independently locked booking state of one destination
// NIC. Sharding receivers (rather than one fabric-wide mutex) lets
// streams to different destinations book concurrently; only traffic
// that would physically contend serialises on the same lock.
type shard struct {
	mu  sync.Mutex
	acc account
	// Per-source traffic counters into this destination (the shard's
	// column of the traffic matrix), owned by the shard lock and
	// allocated on the first message in (shard.ensure).
	matMsgs  []uint64
	matBytes []uint64
	// NIC-side contention seen by messages into this destination:
	// cumulative queueing delay and the worst single-message queue
	// depth, both in cycles and excluding the shared switch's share
	// (which is not attributable to one link). Owned by the shard lock.
	stall     uint64
	peakQueue uint64
	// Per-link-class split of the same traffic (classIntra/classInter).
	// On flat topologies every link is a network link and books as
	// inter. Owned by the shard lock.
	cls [2]classCounters
}

// classCounters is one link class's share of a NIC's traffic and
// NIC-side contention.
type classCounters struct {
	msgs, bytes, stall, peak uint64
}

// Link-class indices for the per-shard and per-metrics splits. They
// mirror ClassIntra/ClassInter but are plain array indices so flat
// (classless) fabrics can book too.
const (
	classIntra = 0
	classInter = 1
)

// classIdx maps the src→dst link to its counter index. Flat fabrics
// have no on-node links, so everything is inter-node network traffic.
func (f *Fabric) classIdx(src, dst int) int {
	if f.intraLink(src, dst) {
		return classIntra
	}
	return classInter
}

// ensure allocates the shard's booking ring and traffic column on first
// use. Callers must hold the shard lock.
func (sh *shard) ensure(n int) {
	if sh.matMsgs == nil {
		sh.acc.init()
		sh.matMsgs = make([]uint64, n)
		sh.matBytes = make([]uint64, n)
	}
}

// bookClass folds one message's NIC-side queueing into the link-class
// split. Callers must hold the shard lock.
func (sh *shard) bookClass(cls int, bytes, queue uint64) {
	c := &sh.cls[cls]
	c.msgs++
	c.bytes += bytes
	c.stall += queue
	if queue > c.peak {
		c.peak = queue
	}
}

// sampleCounters emits one point on each of the NIC's counter tracks
// after a booking: the queueing delay the message saw and the
// cumulative per-class stall and load. Callers must hold the shard
// lock (the cumulative values read coherently) and have checked
// f.obs != nil.
func (f *Fabric) sampleCounters(dst int, now, queue uint64, sh *shard) {
	fc := f.obs.FabricCounters(dst)
	if fc == nil {
		return
	}
	fc.Queue.Sample(now, float64(queue), 0)
	fc.Stall.Sample(now, float64(sh.cls[classIntra].stall), float64(sh.cls[classInter].stall))
	fc.Load.Sample(now, float64(sh.cls[classIntra].bytes), float64(sh.cls[classInter].bytes))
}

// Fabric is a contention-aware network shared by all simulated nodes.
// It is safe for concurrent use by per-PE goroutines.
//
// Contention uses windowed booking: virtual time is divided into
// fixed-width windows, and every message books its service time at its
// destination (and at the shared switch) in the window of its send
// timestamp. A message's queueing delay is the service already booked
// in that window, capped at QueueCap windows. Because booking keys on
// virtual timestamps, PEs whose virtual clocks have drifted apart do
// not falsely contend, and the model is insensitive (up to window
// granularity) to the real-time order in which goroutines issue sends.
//
// Booking state is sharded: each destination NIC has its own lock and
// window-slot ring, and the shared switch has a separately locked
// account. Global statistics are atomic counters. See docs/PERF.md for
// the hot-path design.
type Fabric struct {
	cfg      Config
	topo     Topology
	classed  Classed // non-nil when topo distinguishes link classes
	window   uint64
	queueCap uint64

	recv     []shard // one per destination node
	switchMu sync.Mutex
	switchAc account

	// downLinks holds the directed links taken down for fault
	// injection. It is copy-on-write: the hot path pays one atomic
	// load, and nil means "all links up".
	downLinks atomic.Pointer[map[[2]int]bool]

	// obs, when non-nil, receives stream-booking events on per-NIC
	// timeline tracks and fabric-level stream metrics. Set before the
	// simulation starts; hot paths pay a single nil test when unset.
	obs *obs.Run

	messages atomic.Uint64
	bytes    atomic.Uint64
	stallCyc atomic.Uint64 // cycles lost to queueing
	dropped  atomic.Uint64 // sends refused on down links
}

// New builds a fabric over the given topology.
func New(topo Topology, cfg Config) (*Fabric, error) {
	if topo == nil || topo.Nodes() <= 0 {
		return nil, fmt.Errorf("fabric: topology with no nodes")
	}
	window := cfg.CongestionWindow
	if window == 0 {
		window = defaultWindow
	}
	qcap := cfg.QueueCap
	if qcap == 0 {
		qcap = defaultQueueCap
	}
	n := topo.Nodes()
	f := &Fabric{
		cfg:      cfg,
		topo:     topo,
		window:   window,
		queueCap: qcap,
		recv:     make([]shard, n),
	}
	f.classed, _ = topo.(Classed)
	// Shard booking rings and traffic-matrix columns are allocated
	// lazily on first use (shard.ensure): a 4096-PE fabric would
	// otherwise pay ~0.5 GiB up front even for runs that touch a
	// handful of NICs. Only the shared switch account is eager.
	f.switchAc.init()
	return f, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(topo Topology, cfg Config) *Fabric {
	f, err := New(topo, cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Topology returns the fabric's topology.
func (f *Fabric) Topology() Topology { return f.topo }

// Config returns the fabric's cost model.
func (f *Fabric) Config() Config { return f.cfg }

// TransitCost returns the uncontended cost of moving n bytes from src to
// dst: injection + hops·α + n·β. On a Classed topology the hop and byte
// coefficients come from the link class (intra-node traffic rides the
// on-node fabric). A self-send costs only the injection overhead (the
// paper's runtime turns PE-local "remote" accesses into plain loads and
// stores, but collectives never self-send anyway).
func (f *Fabric) TransitCost(src, dst int, n int) uint64 {
	if n < 0 {
		n = 0
	}
	hops := uint64(f.topo.Hops(src, dst))
	hop := f.cfg.HopLatency
	if f.classed != nil && src != dst && f.cfg.IntraHopLatency > 0 &&
		f.classed.Class(src, dst) == ClassIntra {
		hop = f.cfg.IntraHopLatency
	}
	return f.cfg.InjectionOverhead + hops*hop + uint64(n)*f.classByteCost(src, dst)
}

// classByteCost returns the per-byte serialisation cost of the src→dst
// link: the flat ByteCost, or the class override on a Classed topology.
func (f *Fabric) classByteCost(src, dst int) uint64 {
	bc := f.cfg.ByteCost
	if f.classed != nil && src != dst {
		if f.classed.Class(src, dst) == ClassIntra {
			if f.cfg.IntraByteCost > 0 {
				bc = f.cfg.IntraByteCost
			}
		} else if f.cfg.InterByteCost > 0 {
			bc = f.cfg.InterByteCost
		}
	}
	return bc
}

// intraLink reports whether src→dst stays on one physical node of a
// Classed topology. Intra-node traffic never crosses the shared switch.
func (f *Fabric) intraLink(src, dst int) bool {
	return f.classed != nil && (src == dst || f.classed.Class(src, dst) == ClassIntra)
}

// linkDown reports whether the directed link src→dst is down.
func (f *Fabric) linkDown(src, dst int) bool {
	m := f.downLinks.Load()
	return m != nil && (*m)[[2]int{src, dst}]
}

// checkPair validates a src/dst pair against the topology.
func (f *Fabric) checkPair(src, dst int) error {
	if src < 0 || src >= f.topo.Nodes() || dst < 0 || dst >= f.topo.Nodes() {
		return fmt.Errorf("fabric: send %d->%d outside topology of %d nodes",
			src, dst, f.topo.Nodes())
	}
	return nil
}

// recvService returns the receiver-side service time of an n-byte
// message over the src→dst link. The per-byte share rides the link's
// class: a pipelined stream into a node across the narrow inter-node
// network drains at that link's serialisation rate, so the class byte
// cost — not just the transit latency — must gate stream throughput.
func (f *Fabric) recvService(src, dst, n int) uint64 {
	return f.cfg.ReceiverGap + uint64(n)*f.classByteCost(src, dst)
}

// switchService returns the shared-switch service time of an n-byte
// message.
func (f *Fabric) switchService(n int) uint64 {
	return f.cfg.SwitchGap + uint64(n)*f.cfg.SwitchByteCost
}

// Send models a message of n bytes leaving src at time now and returns
// the cycle at which it is fully received at dst. Messages sharing a
// congestion window queue behind each other at the destination NIC and
// at the shared switch; the resulting delay is recorded in
// ContentionCycles.
//
// Send is the single-message form; pipelined element streams should use
// SendStream or FetchStream, which book a whole stream per critical
// section.
func (f *Fabric) Send(src, dst int, n int, now uint64) (arrive uint64, err error) {
	if err := f.checkPair(src, dst); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("fabric: negative message size %d", n)
	}
	if f.linkDown(src, dst) {
		f.dropped.Add(1)
		return 0, fmt.Errorf("fabric: link %d->%d is down", src, dst)
	}
	transit := f.TransitCost(src, dst, n)
	cls := f.classIdx(src, dst)

	sh := &f.recv[dst]
	sh.mu.Lock()
	sh.ensure(len(f.recv))
	queue := sh.acc.book(f.window, f.queueCap, now, f.recvService(src, dst, n))
	sh.matMsgs[src]++
	sh.matBytes[src] += uint64(n)
	sh.stall += queue
	if queue > sh.peakQueue {
		sh.peakQueue = queue
	}
	sh.bookClass(cls, uint64(n), queue)
	nicQueue := queue
	if f.obs != nil {
		f.sampleCounters(dst, now, queue, sh)
	}
	sh.mu.Unlock()

	if f.cfg.SwitchGap > 0 && cls == classInter {
		f.switchMu.Lock()
		if qs := f.switchAc.book(f.window, f.queueCap, now, f.switchService(n)); qs > queue {
			queue = qs
		}
		f.switchMu.Unlock()
	}

	f.stallCyc.Add(queue)
	f.messages.Add(1)
	f.bytes.Add(uint64(n))
	if f.obs != nil {
		f.obs.FabricMetrics().AddStall(queue)
		f.obs.FabricMetrics().AddClass(cls, 1, uint64(n), nicQueue)
	}
	return now + queue + transit, nil
}

// SendAfter is Send for ordered-channel control messages: the message
// leaves src at now but is not delivered before notBefore. Completion
// flags use it so a flag store trailing its payload on the same path
// cannot overtake the data it signals; the booking is otherwise
// identical to Send.
func (f *Fabric) SendAfter(src, dst int, n int, now, notBefore uint64) (arrive uint64, err error) {
	arrive, err = f.Send(src, dst, n, now)
	if err != nil {
		return 0, err
	}
	if arrive < notBefore {
		arrive = notBefore
	}
	return arrive, nil
}

// SetLinkState marks the directed link src→dst up or down. Sends over
// a down link fail — the fault-injection hook used to test that
// runtime and collective error paths propagate cleanly instead of
// deadlocking.
func (f *Fabric) SetLinkState(src, dst int, up bool) {
	for {
		old := f.downLinks.Load()
		next := make(map[[2]int]bool)
		if old != nil {
			for k, v := range *old {
				next[k] = v
			}
		}
		if up {
			delete(next, [2]int{src, dst})
		} else {
			next[[2]int{src, dst}] = true
		}
		var p *map[[2]int]bool
		if len(next) > 0 {
			p = &next
		}
		if f.downLinks.CompareAndSwap(old, p) {
			return
		}
	}
}

// Dropped returns the number of sends refused because the link was
// down.
func (f *Fabric) Dropped() uint64 { return f.dropped.Load() }

// Messages returns the number of messages sent.
func (f *Fabric) Messages() uint64 { return f.messages.Load() }

// Bytes returns the total payload bytes sent.
func (f *Fabric) Bytes() uint64 { return f.bytes.Load() }

// ContentionCycles returns the cumulative queueing delay experienced at
// busy receivers and the shared switch.
func (f *Fabric) ContentionCycles() uint64 { return f.stallCyc.Load() }

// Traffic returns the per-directed-pair message and byte counts:
// msgs[src][dst] and bytes[src][dst].
func (f *Fabric) Traffic() (msgs, bytes [][]uint64) {
	n := f.topo.Nodes()
	msgs = make([][]uint64, n)
	bytes = make([][]uint64, n)
	for s := 0; s < n; s++ {
		msgs[s] = make([]uint64, n)
		bytes[s] = make([]uint64, n)
	}
	for d := 0; d < n; d++ {
		sh := &f.recv[d]
		sh.mu.Lock()
		for s := 0; s < n && sh.matMsgs != nil; s++ {
			msgs[s][d] = sh.matMsgs[s]
			bytes[s][d] = sh.matBytes[s]
		}
		sh.mu.Unlock()
	}
	return msgs, bytes
}

// Reset clears occupancy and statistics, for reuse between benchmark
// repetitions. Shards never touched stay unallocated.
func (f *Fabric) Reset() {
	for d := range f.recv {
		sh := &f.recv[d]
		sh.mu.Lock()
		if sh.matMsgs != nil {
			sh.acc.init()
			for s := range sh.matMsgs {
				sh.matMsgs[s], sh.matBytes[s] = 0, 0
			}
		}
		sh.stall, sh.peakQueue = 0, 0
		sh.cls = [2]classCounters{}
		sh.mu.Unlock()
	}
	f.switchMu.Lock()
	f.switchAc.init()
	f.switchMu.Unlock()
	f.messages.Store(0)
	f.bytes.Store(0)
	f.stallCyc.Store(0)
	f.dropped.Store(0)
}
