package fabric

import (
	"fmt"

	"xbgas/internal/obs"
)

// ringWindows is the number of congestion-window slots each booking
// account keeps resident (a power of two). With the default 2048-cycle
// window the ring spans ~8.4M cycles of virtual time — far wider than
// the clock skew between free-running PEs, which only synchronise at
// barriers (GUPS-style kernels drift by hundreds of thousands of
// cycles between them). Bookings that fall off the ring are treated as
// drained: a message timestamped more than ringWindows windows before
// the newest booking in its slot's residue class sees an idle
// resource. Each account costs 64 KiB once allocated; accounts are
// allocated lazily (shard.ensure) so only NICs that actually receive
// traffic pay it, keeping 1k–4k-PE fabrics affordable.
const ringWindows = 4096

// emptyWindow marks an unused ring slot. Virtual time would need ~2^75
// cycles to reach it.
const emptyWindow = ^uint64(0)

// account is the windowed fluid-queue occupancy of one contended
// resource (a destination NIC or the shared switch). It replaces the
// seed's map[window]uint64 with a fixed ring of window slots: booking
// is two array reads and a write, allocation-free, and Reset is a
// constant-size wipe.
//
// Callers must hold the lock that owns the account.
type account struct {
	wid    []uint64
	booked []uint64
}

// init allocates the ring on first use and empties every slot.
func (a *account) init() {
	if a.wid == nil {
		a.wid = make([]uint64, ringWindows)
		a.booked = make([]uint64, ringWindows)
	}
	for i := range a.wid {
		a.wid[i] = emptyWindow
		a.booked[i] = 0
	}
}

// book records service cycles against the window containing now and
// returns the queueing delay the message experiences: the service
// already booked in that window beyond the window's elapsed portion,
// capped at queueCap windows. The math is identical to the seed's map
// implementation for every window resident in the ring; claiming a slot
// evicts the booking of an older window in the same residue class
// (which forward-moving clocks will not revisit), and a message
// arriving for a window older than the slot's resident sees the
// resource as drained.
func (a *account) book(window, queueCap, now, service uint64) uint64 {
	w := now / window
	idx := w % ringWindows
	switch {
	case a.wid[idx] == w:
		// Resident window: accumulate below.
	case a.wid[idx] == emptyWindow || a.wid[idx] < w:
		a.wid[idx] = w
		a.booked[idx] = 0
	default:
		// Older than the ring horizon: treat the window as drained and
		// do not book (the resident, newer window keeps its occupancy).
		return 0
	}
	elapsed := now % window
	booked := a.booked[idx]
	a.booked[idx] = booked + service
	if booked <= elapsed {
		return 0
	}
	queued := booked - elapsed
	if limit := queueCap * window; queued > limit {
		return limit
	}
	return queued
}

// Stream describes a pipelined one-way element stream for SendStream:
// nelems = len(PreCost) messages of ElemBytes each from Src to Dst.
// PreCost[i] is added to the issue clock before element i is sent (the
// source-element read cost in a put). When Unrolled, consecutive sends
// are Gap cycles apart with flow control throttling the stream once
// more than FlowWindow cycles of arrivals back up in the network;
// otherwise each send waits for the previous element's arrival.
type Stream struct {
	Src, Dst   int
	ElemBytes  int
	Start      uint64   // issue clock before the first element
	PreCost    []uint64 // per-element pre-send cost; len = nelems
	Gap        uint64   // per-element sender occupancy when unrolled
	FlowWindow uint64   // flow-control backlog bound (depth · gap)
	Unrolled   bool
}

// SendStream books an entire element stream in one critical section and
// returns the sender's final issue clock and the latest arrival time.
// Element i leaves at issue_i = issue_{i-1}+PreCost[i] (plus pipeline
// spacing) and arrives at issue_i+queue+transit, exactly as if each
// element had been passed to Send at the same timestamp — the per-window
// booking the destination and switch accounts see is identical.
//
// On a down link the stream stops at the failing element, elements
// already booked stay booked (they left the source), and an error is
// returned.
func (f *Fabric) SendStream(s Stream) (endIssue, lastArrive uint64, err error) {
	if err := f.checkPair(s.Src, s.Dst); err != nil {
		return 0, 0, err
	}
	if s.ElemBytes < 0 {
		return 0, 0, fmt.Errorf("fabric: negative message size %d", s.ElemBytes)
	}
	n := len(s.PreCost)
	if n == 0 {
		return s.Start, 0, nil
	}
	transit := f.TransitCost(s.Src, s.Dst, s.ElemBytes)
	recvSvc := f.recvService(s.Src, s.Dst, s.ElemBytes)
	swSvc := f.switchService(s.ElemBytes)
	cls := f.classIdx(s.Src, s.Dst)
	useSwitch := f.cfg.SwitchGap > 0 && cls == classInter

	var sent, stall, nicStall, lastQueue uint64
	issue := s.Start

	sh := &f.recv[s.Dst]
	sh.mu.Lock()
	sh.ensure(len(f.recv))
	if useSwitch {
		f.switchMu.Lock()
	}
	for i := 0; i < n; i++ {
		if f.linkDown(s.Src, s.Dst) {
			f.dropped.Add(1)
			err = fmt.Errorf("fabric: link %d->%d is down", s.Src, s.Dst)
			break
		}
		issue += s.PreCost[i]
		queue := sh.acc.book(f.window, f.queueCap, issue, recvSvc)
		sh.stall += queue
		if queue > sh.peakQueue {
			sh.peakQueue = queue
		}
		sh.bookClass(cls, uint64(s.ElemBytes), queue)
		nicStall += queue
		lastQueue = queue
		if useSwitch {
			if qs := f.switchAc.book(f.window, f.queueCap, issue, swSvc); qs > queue {
				queue = qs
			}
		}
		stall += queue
		sent++
		arrive := issue + queue + transit
		if arrive > lastArrive {
			lastArrive = arrive
		}
		if s.Unrolled {
			issue += s.Gap
			if backlog := arrive - transit; backlog > issue+s.FlowWindow {
				issue = backlog - s.FlowWindow
			}
		} else {
			issue = arrive
		}
	}
	sh.matMsgs[s.Src] += sent
	sh.matBytes[s.Src] += sent * uint64(s.ElemBytes)
	if f.obs != nil && sent > 0 {
		// The destination NIC's track is appended under its shard lock,
		// so one goroutine writes it at a time.
		f.obs.FabricTrack(s.Dst).Complete("send_stream", s.Start, lastArrive,
			obs.Args{Rank: s.Src, Peer: s.Dst, Round: -1, Nelems: int(sent)})
		f.sampleCounters(s.Dst, issue, lastQueue, sh)
	}
	if useSwitch {
		f.switchMu.Unlock()
	}
	sh.mu.Unlock()

	f.messages.Add(sent)
	f.bytes.Add(sent * uint64(s.ElemBytes))
	f.stallCyc.Add(stall)
	if f.obs != nil && sent > 0 {
		f.obs.FabricMetrics().ObserveStream(false, int(sent), stall)
		f.obs.FabricMetrics().AddClass(cls, sent, sent*uint64(s.ElemBytes), nicStall)
	}
	if err != nil {
		return 0, 0, err
	}
	return issue, lastArrive, nil
}

// Fetch describes a pipelined request/response element stream for
// FetchStream: nelems = len(PostCost) round trips in which Src sends a
// ReqBytes request to Dst and Dst answers with RespBytes of data.
// ReqCost is added to each request's departure timestamp (the local
// instruction cost of issuing it); PostCost[i] is added after element
// i's data arrives (the destination-element write cost in a get).
type Fetch struct {
	Src, Dst   int
	ReqBytes   int
	RespBytes  int
	Start      uint64
	ReqCost    uint64
	PostCost   []uint64 // per-element post-arrival cost; len = nelems
	Gap        uint64
	FlowWindow uint64
	Unrolled   bool
}

// FetchStream books an entire request/response stream in one critical
// section and returns the requester's final issue clock and the latest
// element completion time. Each round trip books the request at Dst's
// NIC and the data at Src's NIC (plus the switch for both legs) with
// timestamps identical to two chained Send calls.
//
// On a down link in either direction the stream stops at the failing
// leg; messages already booked stay booked.
func (f *Fabric) FetchStream(q Fetch) (endIssue, lastDone uint64, err error) {
	if err := f.checkPair(q.Src, q.Dst); err != nil {
		return 0, 0, err
	}
	if q.ReqBytes < 0 || q.RespBytes < 0 {
		return 0, 0, fmt.Errorf("fabric: negative message size")
	}
	n := len(q.PostCost)
	if n == 0 {
		return q.Start, 0, nil
	}
	transitReq := f.TransitCost(q.Src, q.Dst, q.ReqBytes)
	transitData := f.TransitCost(q.Dst, q.Src, q.RespBytes)
	transit := transitReq + transitData
	reqSvc := f.recvService(q.Src, q.Dst, q.ReqBytes)
	dataSvc := f.recvService(q.Dst, q.Src, q.RespBytes)
	swReqSvc := f.switchService(q.ReqBytes)
	swDataSvc := f.switchService(q.RespBytes)
	cls := f.classIdx(q.Src, q.Dst)
	useSwitch := f.cfg.SwitchGap > 0 && cls == classInter

	var reqSent, dataSent, stall uint64
	var nicStallReq, nicStallData, lastQr, lastQd uint64
	issue := q.Start

	// Two shards are involved: Dst receives the requests, Src receives
	// the data. Lock in ascending index order (once if they coincide),
	// then the switch — the same global order every fabric path uses.
	shReq := &f.recv[q.Dst]
	shData := &f.recv[q.Src]
	lo, hi := shReq, shData
	if q.Src < q.Dst {
		lo, hi = shData, shReq
	}
	lo.mu.Lock()
	if hi != lo {
		hi.mu.Lock()
	}
	shReq.ensure(len(f.recv))
	shData.ensure(len(f.recv))
	if useSwitch {
		f.switchMu.Lock()
	}
	for i := 0; i < n; i++ {
		if f.linkDown(q.Src, q.Dst) {
			f.dropped.Add(1)
			err = fmt.Errorf("fabric: link %d->%d is down", q.Src, q.Dst)
			break
		}
		t := issue + q.ReqCost
		qr := shReq.acc.book(f.window, f.queueCap, t, reqSvc)
		shReq.stall += qr
		if qr > shReq.peakQueue {
			shReq.peakQueue = qr
		}
		shReq.bookClass(cls, uint64(q.ReqBytes), qr)
		nicStallReq += qr
		lastQr = qr
		if useSwitch {
			if qs := f.switchAc.book(f.window, f.queueCap, t, swReqSvc); qs > qr {
				qr = qs
			}
		}
		stall += qr
		reqSent++
		req := t + qr + transitReq

		if f.linkDown(q.Dst, q.Src) {
			f.dropped.Add(1)
			err = fmt.Errorf("fabric: link %d->%d is down", q.Dst, q.Src)
			break
		}
		qd := shData.acc.book(f.window, f.queueCap, req, dataSvc)
		shData.stall += qd
		if qd > shData.peakQueue {
			shData.peakQueue = qd
		}
		shData.bookClass(cls, uint64(q.RespBytes), qd)
		nicStallData += qd
		lastQd = qd
		if useSwitch {
			if qs := f.switchAc.book(f.window, f.queueCap, req, swDataSvc); qs > qd {
				qd = qs
			}
		}
		stall += qd
		dataSent++
		data := req + qd + transitData

		done := data + q.PostCost[i]
		if done > lastDone {
			lastDone = done
		}
		if q.Unrolled {
			issue += q.Gap
			if backlog := data - transit; backlog > issue+q.FlowWindow {
				issue = backlog - q.FlowWindow
			}
		} else {
			issue = done
		}
	}
	shReq.matMsgs[q.Src] += reqSent
	shReq.matBytes[q.Src] += reqSent * uint64(q.ReqBytes)
	shData.matMsgs[q.Dst] += dataSent
	shData.matBytes[q.Dst] += dataSent * uint64(q.RespBytes)
	if f.obs != nil && reqSent > 0 {
		// Appended under the serving node's shard lock (held here).
		f.obs.FabricTrack(q.Dst).Complete("fetch_stream", q.Start, lastDone,
			obs.Args{Rank: q.Src, Peer: q.Dst, Round: -1, Nelems: int(reqSent)})
		f.sampleCounters(q.Dst, issue, lastQr, shReq)
		if dataSent > 0 {
			f.sampleCounters(q.Src, issue, lastQd, shData)
		}
	}
	if useSwitch {
		f.switchMu.Unlock()
	}
	if hi != lo {
		hi.mu.Unlock()
	}
	lo.mu.Unlock()

	f.messages.Add(reqSent + dataSent)
	f.bytes.Add(reqSent*uint64(q.ReqBytes) + dataSent*uint64(q.RespBytes))
	f.stallCyc.Add(stall)
	if f.obs != nil && reqSent > 0 {
		f.obs.FabricMetrics().ObserveStream(true, int(reqSent), stall)
		f.obs.FabricMetrics().AddClass(cls, reqSent, reqSent*uint64(q.ReqBytes), nicStallReq)
		f.obs.FabricMetrics().AddClass(cls, dataSent, dataSent*uint64(q.RespBytes), nicStallData)
	}
	if err != nil {
		return 0, 0, err
	}
	return issue, lastDone, nil
}
