package fabric

import "xbgas/internal/obs"

// SetObs attaches an observability run to the fabric. Stream bookings
// (SendStream, FetchStream) then emit one span per stream on the
// destination NIC's timeline track and feed the run's fabric metrics;
// single-message Sends contribute queueing delay to the stall counter.
// Pass nil to detach. Not safe to call concurrently with traffic.
func (f *Fabric) SetObs(run *obs.Run) { f.obs = run }

// NICStats is the per-destination-NIC view of fabric contention: the
// traffic that arrived at the NIC and the queueing it caused there.
// StallCycles and PeakQueue count NIC-side queueing only; the shared
// switch's contribution is fabric-wide and reported separately by
// ContentionCycles.
type NICStats struct {
	Msgs        uint64 // messages received
	Bytes       uint64 // payload bytes received
	StallCycles uint64 // cumulative queueing delay at this NIC
	PeakQueue   uint64 // worst single-message queueing delay, cycles

	// Per-link-class split of the same traffic. On flat topologies
	// every link is a network link, so Intra stays zero and Inter
	// mirrors the totals.
	Intra, Inter ClassStats
}

// ClassStats is one link class's share of a NIC's traffic and NIC-side
// contention.
type ClassStats struct {
	Msgs        uint64
	Bytes       uint64
	StallCycles uint64
	PeakQueue   uint64
}

// ClassedTopo reports whether the fabric's topology distinguishes
// intra- from inter-node link classes (grouped, dragonfly).
func (f *Fabric) ClassedTopo() bool { return f.classed != nil }

// NICStats returns one entry per destination node.
func (f *Fabric) NICStats() []NICStats {
	out := make([]NICStats, f.topo.Nodes())
	for d := range f.recv {
		sh := &f.recv[d]
		sh.mu.Lock()
		var msgs, bytes uint64
		for s := range sh.matMsgs {
			msgs += sh.matMsgs[s]
			bytes += sh.matBytes[s]
		}
		out[d] = NICStats{
			Msgs:        msgs,
			Bytes:       bytes,
			StallCycles: sh.stall,
			PeakQueue:   sh.peakQueue,
			Intra: ClassStats{
				Msgs: sh.cls[classIntra].msgs, Bytes: sh.cls[classIntra].bytes,
				StallCycles: sh.cls[classIntra].stall, PeakQueue: sh.cls[classIntra].peak,
			},
			Inter: ClassStats{
				Msgs: sh.cls[classInter].msgs, Bytes: sh.cls[classInter].bytes,
				StallCycles: sh.cls[classInter].stall, PeakQueue: sh.cls[classInter].peak,
			},
		}
		sh.mu.Unlock()
	}
	return out
}
