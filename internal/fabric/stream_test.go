package fabric

import (
	"strings"
	"testing"
)

// streamConfig is a deliberately small-window model so tests can cross
// window boundaries and hit the queue cap with few messages.
func streamConfig() Config {
	return Config{
		InjectionOverhead: 10,
		IssueGap:          5,
		HopLatency:        50,
		ByteCost:          1,
		ReceiverGap:       100,
		CongestionWindow:  256,
		QueueCap:          2,
	}
}

// sendAll is the reference: the same element recurrence evaluated with
// individual Send calls.
func sendAll(t *testing.T, f *Fabric, s Stream) (endIssue, lastArrive uint64) {
	t.Helper()
	transit := f.TransitCost(s.Src, s.Dst, s.ElemBytes)
	issue := s.Start
	for _, pre := range s.PreCost {
		issue += pre
		arrive, err := f.Send(s.Src, s.Dst, s.ElemBytes, issue)
		if err != nil {
			t.Fatalf("Send: %v", err)
		}
		if arrive > lastArrive {
			lastArrive = arrive
		}
		if s.Unrolled {
			issue += s.Gap
			if backlog := arrive - transit; backlog > issue+s.FlowWindow {
				issue = backlog - s.FlowWindow
			}
		} else {
			issue = arrive
		}
	}
	return issue, lastArrive
}

func preCosts(n int, c uint64) []uint64 {
	pc := make([]uint64, n)
	for i := range pc {
		pc[i] = c
	}
	return pc
}

// TestSendStreamMatchesSends checks the batched booking against the
// message-at-a-time reference on two identical fabrics, for streams
// that straddle many window boundaries in both pipelined and ordered
// modes.
func TestSendStreamMatchesSends(t *testing.T) {
	for _, tc := range []struct {
		name     string
		n        int
		unrolled bool
	}{
		{"ordered-short", 3, false},
		{"ordered-straddle", 40, false}, // recv gap 100 ≫ window 256: many windows
		{"pipelined-straddle", 200, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := MustNew(FullyConnected{N: 4}, streamConfig())
			fast := MustNew(FullyConnected{N: 4}, streamConfig())
			s := Stream{
				Src: 1, Dst: 2, ElemBytes: 16, Start: 100,
				PreCost: preCosts(tc.n, 3), Gap: 5, FlowWindow: 80,
				Unrolled: tc.unrolled,
			}
			wantIssue, wantArrive := sendAll(t, ref, s)
			gotIssue, gotArrive, err := fast.SendStream(s)
			if err != nil {
				t.Fatalf("SendStream: %v", err)
			}
			if gotIssue != wantIssue || gotArrive != wantArrive {
				t.Errorf("stream: issue=%d arrive=%d, reference issue=%d arrive=%d",
					gotIssue, gotArrive, wantIssue, wantArrive)
			}
			if fast.Messages() != ref.Messages() || fast.Bytes() != ref.Bytes() ||
				fast.ContentionCycles() != ref.ContentionCycles() {
				t.Errorf("stats: stream msgs=%d bytes=%d cont=%d, reference msgs=%d bytes=%d cont=%d",
					fast.Messages(), fast.Bytes(), fast.ContentionCycles(),
					ref.Messages(), ref.Bytes(), ref.ContentionCycles())
			}
		})
	}
}

// TestFetchStreamMatchesSends does the same for the request/response
// round-trip form.
func TestFetchStreamMatchesSends(t *testing.T) {
	cfg := streamConfig()
	ref := MustNew(FullyConnected{N: 4}, cfg)
	fast := MustNew(FullyConnected{N: 4}, cfg)

	post := preCosts(64, 7)
	q := Fetch{
		Src: 0, Dst: 3, ReqBytes: 8, RespBytes: 8, Start: 50,
		ReqCost: 1, PostCost: post, Gap: 5, FlowWindow: 80, Unrolled: true,
	}

	// Reference: chained Sends.
	transit := ref.TransitCost(0, 3, 8) + ref.TransitCost(3, 0, 8)
	issue := q.Start
	var wantDone uint64
	for _, pc := range post {
		req, err := ref.Send(0, 3, 8, issue+q.ReqCost)
		if err != nil {
			t.Fatal(err)
		}
		data, err := ref.Send(3, 0, 8, req)
		if err != nil {
			t.Fatal(err)
		}
		done := data + pc
		if done > wantDone {
			wantDone = done
		}
		issue += q.Gap
		if backlog := data - transit; backlog > issue+q.FlowWindow {
			issue = backlog - q.FlowWindow
		}
	}

	gotIssue, gotDone, err := fast.FetchStream(q)
	if err != nil {
		t.Fatalf("FetchStream: %v", err)
	}
	if gotIssue != issue || gotDone != wantDone {
		t.Errorf("fetch: issue=%d done=%d, reference issue=%d done=%d",
			gotIssue, gotDone, issue, wantDone)
	}
	if fast.Messages() != ref.Messages() || fast.ContentionCycles() != ref.ContentionCycles() {
		t.Errorf("stats diverge: stream msgs=%d cont=%d, reference msgs=%d cont=%d",
			fast.Messages(), fast.ContentionCycles(), ref.Messages(), ref.ContentionCycles())
	}
}

// TestStreamQueueCapSaturation drives one window far past the queue
// cap: per-message delay must plateau at QueueCap·window exactly as
// with individual sends.
func TestStreamQueueCapSaturation(t *testing.T) {
	cfg := streamConfig() // cap = 2 windows of 256 cycles
	f := MustNew(FullyConnected{N: 2}, cfg)
	limit := cfg.QueueCap * cfg.CongestionWindow

	// 50 zero-cost messages at the same timestamp: service 100+16 each,
	// so booking blows through the cap almost immediately.
	s := Stream{Src: 0, Dst: 1, ElemBytes: 16, Start: 512,
		PreCost: preCosts(50, 0), Unrolled: true, Gap: 0, FlowWindow: 1 << 40}
	_, lastArrive, err := f.SendStream(s)
	if err != nil {
		t.Fatal(err)
	}
	wantMax := s.Start + limit + f.TransitCost(0, 1, 16)
	if lastArrive != wantMax {
		t.Errorf("saturated arrival %d, want cap-bounded %d", lastArrive, wantMax)
	}
	// Contention must reflect the cap, not unbounded backlog.
	refTotal := f.ContentionCycles()
	perMsgMax := limit * 50
	if refTotal > perMsgMax {
		t.Errorf("contention %d exceeds %d (cap × messages)", refTotal, perMsgMax)
	}
}

// TestStreamDownLinkMidStream takes the link down between two streams:
// the second stream must fail, count a drop, and leave earlier
// bookings intact.
func TestStreamDownLinkMidStream(t *testing.T) {
	f := MustNew(FullyConnected{N: 3}, streamConfig())
	if _, _, err := f.SendStream(Stream{Src: 0, Dst: 1, ElemBytes: 16, Start: 0,
		PreCost: preCosts(4, 1)}); err != nil {
		t.Fatal(err)
	}
	before := f.Messages()

	f.SetLinkState(0, 1, false)
	_, _, err := f.SendStream(Stream{Src: 0, Dst: 1, ElemBytes: 16, Start: 1000,
		PreCost: preCosts(4, 1)})
	if err == nil || !strings.Contains(err.Error(), "down") {
		t.Fatalf("want down-link error, got %v", err)
	}
	if f.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", f.Dropped())
	}
	if f.Messages() != before {
		t.Errorf("messages %d changed by failed stream (was %d)", f.Messages(), before)
	}

	// Fetch direction: only the response leg is down.
	f.SetLinkState(0, 1, true)
	f.SetLinkState(1, 0, false)
	_, _, err = f.FetchStream(Fetch{Src: 0, Dst: 1, ReqBytes: 8, RespBytes: 8,
		Start: 2000, PostCost: preCosts(4, 1)})
	if err == nil || !strings.Contains(err.Error(), "1->0") {
		t.Fatalf("want response-leg error, got %v", err)
	}
	// The request left before the response leg failed.
	if got := f.Messages(); got != before+1 {
		t.Errorf("messages = %d, want %d (request booked before failure)", got, before+1)
	}

	f.SetLinkState(1, 0, true)
	if _, _, err := f.SendStream(Stream{Src: 0, Dst: 1, ElemBytes: 16, Start: 3000,
		PreCost: preCosts(2, 1)}); err != nil {
		t.Fatalf("restored link: %v", err)
	}
}

// TestStreamSelfSend books a self-directed stream: transit is the bare
// injection overhead plus serialisation (no hops), matching Send.
func TestStreamSelfSend(t *testing.T) {
	cfg := streamConfig()
	f := MustNew(FullyConnected{N: 2}, cfg)
	ref := MustNew(FullyConnected{N: 2}, cfg)

	s := Stream{Src: 1, Dst: 1, ElemBytes: 16, Start: 0, PreCost: preCosts(5, 2)}
	wantIssue, wantArrive := sendAll(t, ref, s)
	gotIssue, gotArrive, err := f.SendStream(s)
	if err != nil {
		t.Fatal(err)
	}
	if gotIssue != wantIssue || gotArrive != wantArrive {
		t.Errorf("self stream issue=%d arrive=%d, reference %d/%d",
			gotIssue, gotArrive, wantIssue, wantArrive)
	}
	if hops := (FullyConnected{N: 2}).Hops(1, 1); hops != 0 {
		t.Fatalf("self hops = %d, want 0", hops)
	}
	if tc := f.TransitCost(1, 1, 16); tc != cfg.InjectionOverhead+16*cfg.ByteCost {
		t.Errorf("self transit %d, want injection+bytes %d", tc, cfg.InjectionOverhead+16)
	}

	// FetchStream with Src == Dst exercises the single-shard lock path.
	if _, _, err := f.FetchStream(Fetch{Src: 0, Dst: 0, ReqBytes: 8, RespBytes: 8,
		Start: 0, PostCost: preCosts(3, 1)}); err != nil {
		t.Fatalf("self fetch: %v", err)
	}
}

// TestAccountRingHorizon documents the ring semantics: a booking older
// than the resident window in its slot sees a drained resource and
// does not disturb the resident booking.
func TestAccountRingHorizon(t *testing.T) {
	var a account
	a.init()
	const window, qcap = 2048, 4

	// Fill window w with heavy service.
	w := uint64(ringWindows + 5)
	now := w * window
	a.book(window, qcap, now, 10_000)
	if q := a.book(window, qcap, now, 100); q == 0 {
		t.Fatal("second booking in a loaded window should queue")
	}

	// A booking ringWindows behind maps to the same slot but must not
	// contend with — or evict — the resident window.
	old := (w - ringWindows) * window
	if q := a.book(window, qcap, old, 100); q != 0 {
		t.Errorf("stale-window booking queued %d cycles, want drained (0)", q)
	}
	if q := a.book(window, qcap, now, 100); q == 0 {
		t.Error("resident window lost its booking to a stale-window arrival")
	}
}
